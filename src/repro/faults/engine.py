"""Prefix-cached fast inference for fault-injection campaigns.

Running the full test set through the network for every injected fault is
what made the paper's exhaustive campaigns take 37-54 days.  Two standard
engineering observations make laptop-scale exhaustive campaigns possible
here:

1. **Masked faults need no inference.**  A stuck-at fault whose target bit
   already holds the stuck value leaves the weight bit-identical; it can
   never affect the output.  Half of all stuck-at faults are masked on
   average.
2. **Prefix caching.**  A weight fault in stage *s* cannot change the
   activations of stages ``< s``; the engine caches every stage's golden
   input once and, per fault, recomputes only stages ``s..end``.

This module holds the classification machinery shared by every engine
(:class:`FaultInjectionEngine`) and the *module* engine
(:class:`InferenceEngine`), whose cache is stage-granular.  The
op-granular, batch-evaluating *plan* engine lives in
:mod:`repro.runtime` and shares the same base — same fingerprinting,
same classification semantics, bit-identical outcomes.
"""

from __future__ import annotations

import enum
import hashlib
import json
from collections.abc import Sequence

import numpy as np

from repro.faults.injector import WeightFaultInjector
from repro.faults.model import Fault
from repro.faults.targets import WeightLayer, enumerate_weight_layers
from repro.ieee754 import FLOAT32, FloatFormat
from repro.nn import Module
from repro.telemetry import Telemetry, resolve_telemetry


class FaultOutcome(enum.IntEnum):
    """Classification of one injected fault.

    The paper classifies faults as *Critical* (the top-1 prediction of the
    faulty network is no longer correct) or *Non-critical*; *Masked* is the
    sub-case of Non-critical where the corrupted word is bit-identical to
    the golden one, so no inference is even needed.
    """

    MASKED = 0
    NON_CRITICAL = 1
    CRITICAL = 2

    @property
    def is_critical(self) -> bool:
        return self is FaultOutcome.CRITICAL


def classify_predictions(
    faulty_predictions: np.ndarray,
    golden_predictions: np.ndarray,
    labels: np.ndarray,
    *,
    policy: str = "accuracy_drop",
    threshold: float = 0.0,
) -> FaultOutcome:
    """Classify a fault from faulty vs golden top-1 predictions.

    Policies:

    - ``"accuracy_drop"`` (paper semantics): critical when the faulty
      network misclassifies at least one image the golden network got
      right — i.e. its top-1 accuracy drops.
    - ``"any_mismatch"``: critical when any prediction differs from the
      golden one (even if a wrong prediction flips to another wrong class).
    - ``"accuracy_threshold"``: critical when the accuracy drop exceeds
      *threshold* (a fraction, e.g. 0.05 for five points).
    """
    golden_correct = golden_predictions == labels
    faulty_correct = faulty_predictions == labels
    if policy == "accuracy_drop":
        critical = bool(np.any(golden_correct & ~faulty_correct))
    elif policy == "any_mismatch":
        critical = bool(np.any(faulty_predictions != golden_predictions))
    elif policy == "accuracy_threshold":
        drop = (golden_correct.mean() - faulty_correct.mean()).item()
        critical = drop > threshold
    else:
        raise ValueError(f"unknown classification policy {policy!r}")
    return FaultOutcome.CRITICAL if critical else FaultOutcome.NON_CRITICAL


class FaultInjectionEngine:
    """Shared base of every fault-classification engine.

    Owns everything that is independent of *how* a faulty forward pass
    is computed: the eval set, the weight-layer enumeration and injector,
    the classification policy, the config-covering fingerprint, and the
    masked-fault short-circuit.  Subclasses set :attr:`kind` (and, for
    numeric-changing variants, :attr:`fusions`) and implement
    :meth:`_predictions_with_fault`; batching engines additionally
    override :meth:`predictions_for_faults` and raise
    :attr:`batch_size` above one.
    """

    #: Engine identity folded into the fingerprint ("module" / "plan").
    kind = "base"
    #: Numeric-changing rewrites active in this engine (fingerprinted).
    fusions: tuple[str, ...] = ()
    #: Faults evaluated per tail pass; 1 means classic one-at-a-time.
    batch_size = 1

    def __init__(
        self,
        model: Module,
        images: np.ndarray,
        labels: np.ndarray,
        *,
        fmt: FloatFormat = FLOAT32,
        policy: str = "accuracy_drop",
        threshold: float = 0.0,
        telemetry: Telemetry | None = None,
    ) -> None:
        if len(images) != len(labels):
            raise ValueError("images and labels must have the same length")
        model.eval()
        self.model = model
        self.images = np.asarray(images, dtype=np.float32)
        self.labels = np.asarray(labels)
        self.policy = policy
        self.threshold = threshold
        self.telemetry = resolve_telemetry(telemetry)
        self.layers: list[WeightLayer] = enumerate_weight_layers(model)
        self.injector = WeightFaultInjector(self.layers, fmt=fmt)
        #: Logical fault inferences performed (a batched tail pass that
        #: classifies K faults counts K, keeping faults/sec comparable
        #: across engines).
        self.inference_count = 0

    def fingerprint(self, *, kind: str | None = None) -> str:
        """SHA-256 over the campaign's full classification identity.

        Covers the golden weight bits and eval images *and* everything
        that decides an outcome given them: the float format, the
        classification policy and threshold, the engine kind, and any
        numeric-changing fusions.  Two engines sharing a fingerprint
        classify every fault identically; checkpoints and distributed
        shards compare it so progress recorded under different weights,
        policies or fused numerics is never resumed or merged.

        *kind* substitutes another engine kind into the identity — used
        by engines whose outcomes are attested bit-identical to a twin
        (e.g. the vectorized engine declaring compatibility with the
        exact plan engine's fingerprint) without building the twin.
        """
        digest = hashlib.sha256()
        header = json.dumps(
            {
                "fmt": self.injector.fmt.name,
                "policy": self.policy,
                "threshold": self.threshold,
                "engine": self.kind if kind is None else kind,
                "fusions": list(self.fusions),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        digest.update(header.encode("utf-8"))
        for layer in self.layers:
            digest.update(self.injector.fmt.encode(layer.flat_weights()).tobytes())
        digest.update(self.images.tobytes())
        return digest.hexdigest()

    # -- classification -------------------------------------------------------

    def predictions_with_fault(self, fault: Fault) -> np.ndarray:
        """Top-1 predictions of the faulty network (always runs inference)."""
        if self.telemetry.enabled:
            with self.telemetry.span("engine.inference"):
                return self._predictions_with_fault(fault)
        return self._predictions_with_fault(fault)

    def _predictions_with_fault(self, fault: Fault) -> np.ndarray:
        raise NotImplementedError

    def predictions_for_faults(self, faults: Sequence[Fault]) -> np.ndarray:
        """Faulty top-1 predictions for a batch of faults: ``(K, N)``.

        The base implementation runs one prefix-cached inference per
        fault; batching engines override it to evaluate same-layer
        faults per stacked tail pass.
        """
        return np.stack([self.predictions_with_fault(f) for f in faults])

    def classify(self, fault: Fault) -> FaultOutcome:
        """Outcome of injecting *fault*: masked, non-critical or critical."""
        if self.injector.is_masked(fault):
            return FaultOutcome.MASKED
        predictions = self.predictions_with_fault(fault)
        return classify_predictions(
            predictions,
            self.golden_predictions,
            self.labels,
            policy=self.policy,
            threshold=self.threshold,
        )

    def classify_many(self, faults: Sequence[Fault]) -> list[FaultOutcome]:
        """Classify a batch of faults (order of outcomes matches input).

        Non-masked faults are grouped by target layer and classified in
        :attr:`batch_size` chunks through :meth:`predictions_for_faults`
        — on a batching engine, same-layer faults share tail passes; on
        the module engine (batch size one) this is exactly the classic
        sequential loop.
        """
        if self.telemetry.enabled:
            with self.telemetry.span(
                "engine.classify_many", emit=True, faults=len(faults)
            ):
                outcomes = self._classify_many(faults)
            self.telemetry.counter("engine.faults_classified").add(len(faults))
            return outcomes
        return self._classify_many(faults)

    def _classify_many(self, faults: Sequence[Fault]) -> list[FaultOutcome]:
        # Faults are grouped by target layer at *every* batch size, not
        # just on batching engines: per-layer workspaces (the plan
        # engine's im2col columns cache, prefix materialisations) are
        # reused across consecutive same-layer faults, where a shuffled
        # campaign order would rebuild them per fault.  Outcomes are
        # scattered back by position, so results are order-independent.
        outcomes: list[FaultOutcome | None] = [None] * len(faults)
        by_layer: dict[int, list[int]] = {}
        for pos, fault in enumerate(faults):
            if self.injector.is_masked(fault):
                outcomes[pos] = FaultOutcome.MASKED
            else:
                by_layer.setdefault(fault.layer, []).append(pos)
        for positions in by_layer.values():
            if self.batch_size == 1:
                # Keep the grouping (workspace reuse) but skip the
                # batched dispatch: predictions_for_faults would
                # np.stack every single-row result, which is measurable
                # against the <2% NullTelemetry overhead budget.
                for pos in positions:
                    outcomes[pos] = classify_predictions(
                        self.predictions_with_fault(faults[pos]),
                        self.golden_predictions,
                        self.labels,
                        policy=self.policy,
                        threshold=self.threshold,
                    )
                continue
            for start in range(0, len(positions), self.batch_size):
                chunk = positions[start : start + self.batch_size]
                rows = self.predictions_for_faults([faults[p] for p in chunk])
                for pos, row in zip(chunk, rows):
                    outcomes[pos] = classify_predictions(
                        row,
                        self.golden_predictions,
                        self.labels,
                        policy=self.policy,
                        threshold=self.threshold,
                    )
        return outcomes


class InferenceEngine(FaultInjectionEngine):
    """Classifies faults by (prefix-cached) inference over a fixed eval set.

    This is the *module* engine: it walks ``stage_modules()`` and caches
    golden activations at stage granularity.  The op-granular
    :class:`repro.runtime.PlanEngine` is bit-identical (when unfused)
    and faster; this engine remains the reference implementation.

    Parameters
    ----------
    model:
        A zoo model exposing ``stage_modules()`` and in eval mode.
    images, labels:
        The evaluation set; every fault is judged against the full set.
    fmt:
        Floating-point format of the weights.
    policy, threshold:
        Fault classification policy (see :func:`classify_predictions`).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` sink.  When enabled,
        per-fault inference times land in the ``span.engine.inference``
        histogram; the default :class:`~repro.telemetry.NullTelemetry`
        costs one attribute read per fault.
    """

    kind = "module"

    def __init__(
        self,
        model: Module,
        images: np.ndarray,
        labels: np.ndarray,
        *,
        fmt: FloatFormat = FLOAT32,
        policy: str = "accuracy_drop",
        threshold: float = 0.0,
        telemetry: Telemetry | None = None,
    ) -> None:
        if not hasattr(model, "stage_modules"):
            raise TypeError(
                "model must expose stage_modules() for prefix caching"
            )
        super().__init__(
            model,
            images,
            labels,
            fmt=fmt,
            policy=policy,
            threshold=threshold,
            telemetry=telemetry,
        )
        self.stages: list[Module] = model.stage_modules()
        self._layer_stage = self._map_layers_to_stages()
        self._activations = self._compute_golden_activations()
        self.golden_predictions = self._activations[-1].argmax(axis=1)
        self.golden_accuracy = float(
            (self.golden_predictions == self.labels).mean()
        )

    def _map_layers_to_stages(self) -> list[int]:
        """Stage index owning each weight layer, in layer order."""
        stage_of_module: dict[int, int] = {}
        for stage_idx, stage in enumerate(self.stages):
            for module in stage.modules():
                stage_of_module[id(module)] = stage_idx
        mapping = []
        for layer in self.layers:
            stage_idx = stage_of_module.get(id(layer.module))
            if stage_idx is None:
                raise ValueError(
                    f"weight layer {layer.name} not found in any stage; "
                    "stage_modules() must cover the whole forward pass"
                )
            mapping.append(stage_idx)
        return mapping

    def _compute_golden_activations(self) -> list[np.ndarray]:
        """Inputs of every stage plus the final logits."""
        acts = [self.images]
        for stage in self.stages:
            acts.append(stage.forward_fast(acts[-1]))
        return acts

    def _predictions_with_fault(self, fault: Fault) -> np.ndarray:
        stage_idx = self._layer_stage[fault.layer]
        # Corrupted weights legitimately push activations to inf/NaN; the
        # classification below only needs argmax, so overflow is expected.
        with self.injector.inject(fault), np.errstate(all="ignore"):
            x = self._activations[stage_idx]
            for stage in self.stages[stage_idx:]:
                x = stage.forward_fast(x)
        self.inference_count += 1
        if self.telemetry.enabled:
            self.telemetry.counter("engine.inferences").add(1)
        return x.argmax(axis=1)
