"""Prefix-cached fast inference for fault-injection campaigns.

Running the full test set through the network for every injected fault is
what made the paper's exhaustive campaigns take 37-54 days.  Two standard
engineering observations make laptop-scale exhaustive campaigns possible
here:

1. **Masked faults need no inference.**  A stuck-at fault whose target bit
   already holds the stuck value leaves the weight bit-identical; it can
   never affect the output.  Half of all stuck-at faults are masked on
   average.
2. **Prefix caching.**  A weight fault in stage *s* cannot change the
   activations of stages ``< s``; the engine caches every stage's golden
   input once and, per fault, recomputes only stages ``s..end``.
"""

from __future__ import annotations

import enum
import hashlib
from collections.abc import Sequence

import numpy as np

from repro.faults.injector import WeightFaultInjector
from repro.faults.model import Fault
from repro.faults.targets import WeightLayer, enumerate_weight_layers
from repro.ieee754 import FLOAT32, FloatFormat
from repro.nn import Conv2d, Linear, Module
from repro.telemetry import Telemetry, resolve_telemetry


class FaultOutcome(enum.IntEnum):
    """Classification of one injected fault.

    The paper classifies faults as *Critical* (the top-1 prediction of the
    faulty network is no longer correct) or *Non-critical*; *Masked* is the
    sub-case of Non-critical where the corrupted word is bit-identical to
    the golden one, so no inference is even needed.
    """

    MASKED = 0
    NON_CRITICAL = 1
    CRITICAL = 2

    @property
    def is_critical(self) -> bool:
        return self is FaultOutcome.CRITICAL


def classify_predictions(
    faulty_predictions: np.ndarray,
    golden_predictions: np.ndarray,
    labels: np.ndarray,
    *,
    policy: str = "accuracy_drop",
    threshold: float = 0.0,
) -> FaultOutcome:
    """Classify a fault from faulty vs golden top-1 predictions.

    Policies:

    - ``"accuracy_drop"`` (paper semantics): critical when the faulty
      network misclassifies at least one image the golden network got
      right — i.e. its top-1 accuracy drops.
    - ``"any_mismatch"``: critical when any prediction differs from the
      golden one (even if a wrong prediction flips to another wrong class).
    - ``"accuracy_threshold"``: critical when the accuracy drop exceeds
      *threshold* (a fraction, e.g. 0.05 for five points).
    """
    golden_correct = golden_predictions == labels
    faulty_correct = faulty_predictions == labels
    if policy == "accuracy_drop":
        critical = bool(np.any(golden_correct & ~faulty_correct))
    elif policy == "any_mismatch":
        critical = bool(np.any(faulty_predictions != golden_predictions))
    elif policy == "accuracy_threshold":
        drop = (golden_correct.mean() - faulty_correct.mean()).item()
        critical = drop > threshold
    else:
        raise ValueError(f"unknown classification policy {policy!r}")
    return FaultOutcome.CRITICAL if critical else FaultOutcome.NON_CRITICAL


class InferenceEngine:
    """Classifies faults by (prefix-cached) inference over a fixed eval set.

    Parameters
    ----------
    model:
        A zoo model exposing ``stage_modules()`` and in eval mode.
    images, labels:
        The evaluation set; every fault is judged against the full set.
    fmt:
        Floating-point format of the weights.
    policy, threshold:
        Fault classification policy (see :func:`classify_predictions`).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` sink.  When enabled,
        per-fault inference times land in the ``span.engine.inference``
        histogram; the default :class:`~repro.telemetry.NullTelemetry`
        costs one attribute read per fault.
    """

    def __init__(
        self,
        model: Module,
        images: np.ndarray,
        labels: np.ndarray,
        *,
        fmt: FloatFormat = FLOAT32,
        policy: str = "accuracy_drop",
        threshold: float = 0.0,
        telemetry: Telemetry | None = None,
    ) -> None:
        if not hasattr(model, "stage_modules"):
            raise TypeError(
                "model must expose stage_modules() for prefix caching"
            )
        if len(images) != len(labels):
            raise ValueError("images and labels must have the same length")
        model.eval()
        self.model = model
        self.images = np.asarray(images, dtype=np.float32)
        self.labels = np.asarray(labels)
        self.policy = policy
        self.threshold = threshold
        self.telemetry = resolve_telemetry(telemetry)
        self.stages: list[Module] = model.stage_modules()
        self.layers: list[WeightLayer] = enumerate_weight_layers(model)
        self.injector = WeightFaultInjector(self.layers, fmt=fmt)
        self._layer_stage = self._map_layers_to_stages()
        self._activations = self._compute_golden_activations()
        self.golden_predictions = self._activations[-1].argmax(axis=1)
        self.golden_accuracy = float(
            (self.golden_predictions == self.labels).mean()
        )
        #: Number of actual (non-masked) inference runs performed.
        self.inference_count = 0

    def _map_layers_to_stages(self) -> list[int]:
        """Stage index owning each weight layer, in layer order."""
        stage_of_module: dict[int, int] = {}
        for stage_idx, stage in enumerate(self.stages):
            for module in stage.modules():
                stage_of_module[id(module)] = stage_idx
        mapping = []
        for layer in self.layers:
            stage_idx = stage_of_module.get(id(layer.module))
            if stage_idx is None:
                raise ValueError(
                    f"weight layer {layer.name} not found in any stage; "
                    "stage_modules() must cover the whole forward pass"
                )
            mapping.append(stage_idx)
        return mapping

    def _compute_golden_activations(self) -> list[np.ndarray]:
        """Inputs of every stage plus the final logits."""
        acts = [self.images]
        for stage in self.stages:
            acts.append(stage.forward_fast(acts[-1]))
        return acts

    def fingerprint(self) -> str:
        """SHA-256 over the golden weight bits and the eval images.

        Identifies the campaign's inputs: two engines with the same
        fingerprint (and policy/threshold) classify every fault
        identically.  Campaign checkpoints store it so progress recorded
        against different weights (e.g. after retraining) is never
        resumed.
        """
        digest = hashlib.sha256()
        for layer in self.layers:
            digest.update(self.injector.fmt.encode(layer.flat_weights()).tobytes())
        digest.update(self.images.tobytes())
        return digest.hexdigest()

    # -- classification -------------------------------------------------------

    def predictions_with_fault(self, fault: Fault) -> np.ndarray:
        """Top-1 predictions of the faulty network (always runs inference)."""
        if self.telemetry.enabled:
            with self.telemetry.span("engine.inference"):
                return self._predictions_with_fault(fault)
        return self._predictions_with_fault(fault)

    def _predictions_with_fault(self, fault: Fault) -> np.ndarray:
        stage_idx = self._layer_stage[fault.layer]
        # Corrupted weights legitimately push activations to inf/NaN; the
        # classification below only needs argmax, so overflow is expected.
        with self.injector.inject(fault), np.errstate(all="ignore"):
            x = self._activations[stage_idx]
            for stage in self.stages[stage_idx:]:
                x = stage.forward_fast(x)
        self.inference_count += 1
        return x.argmax(axis=1)

    def classify(self, fault: Fault) -> FaultOutcome:
        """Outcome of injecting *fault*: masked, non-critical or critical."""
        if self.injector.is_masked(fault):
            return FaultOutcome.MASKED
        predictions = self.predictions_with_fault(fault)
        return classify_predictions(
            predictions,
            self.golden_predictions,
            self.labels,
            policy=self.policy,
            threshold=self.threshold,
        )

    def classify_many(self, faults: Sequence[Fault]) -> list[FaultOutcome]:
        """Classify a batch of faults (sequentially)."""
        if self.telemetry.enabled:
            with self.telemetry.span(
                "engine.classify_many", emit=True, faults=len(faults)
            ):
                outcomes = [self.classify(fault) for fault in faults]
            self.telemetry.counter("engine.faults_classified").add(len(faults))
            return outcomes
        return [self.classify(fault) for fault in faults]
