"""Enumeration of a model's fault-target weight layers.

The paper indexes CNN layers the way reliability studies usually do: the
ordered sequence of parameterised *weight* layers — convolutions and the
final classifier — skipping batch-norm parameters and biases.  ResNet-20
yields 20 layers under this convention and MobileNetV2 yields 54, matching
Tables I and II.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import Conv2d, Linear, Module
from repro.nn.module import Parameter


@dataclass(frozen=True)
class WeightLayer:
    """One fault-target layer.

    Attributes
    ----------
    index:
        Position in the paper's layer ordering (0-based).
    name:
        Dotted module path inside the model.
    module:
        The owning :class:`~repro.nn.Conv2d` or :class:`~repro.nn.Linear`.
    """

    index: int
    name: str
    module: Module

    @property
    def weight(self) -> Parameter:
        """The layer's weight parameter."""
        return self.module.weight

    @property
    def size(self) -> int:
        """Number of weights in the layer."""
        return self.weight.size

    @property
    def shape(self) -> tuple[int, ...]:
        """Weight tensor shape."""
        return self.weight.shape

    def flat_weights(self) -> np.ndarray:
        """A flat view of the layer's weights (shares memory)."""
        return self.weight.data.reshape(-1)


def enumerate_weight_layers(model: Module) -> list[WeightLayer]:
    """Ordered conv/linear weight layers of *model*.

    Order follows depth-first module definition order, which for the zoo's
    models coincides with the forward dataflow — and with the paper's layer
    indexing.
    """
    layers: list[WeightLayer] = []
    for name, module in model.named_modules():
        if isinstance(module, (Conv2d, Linear)):
            layers.append(WeightLayer(index=len(layers), name=name, module=module))
    if not layers:
        raise ValueError("model has no conv/linear weight layers to target")
    return layers
