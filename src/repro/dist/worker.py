"""Shard execution: claim, run, heartbeat, complete (or fail and retry).

A :class:`ShardWorker` drains a :class:`~repro.dist.queue.ShardQueue`
until nothing is left to do.  Each claimed shard is executed through a
*context* — :class:`ExhaustiveContext` (an inference engine + fault
space) or :class:`SampledContext` (an oracle + plan) — and its result is
retired into ``done/`` through the verified store.  Workers are
cooperative supervisors: before every claim they release expired peer
leases, so a campaign survives any subset of its workers dying.
"""

from __future__ import annotations

import os
import socket
import time
import traceback

import numpy as np

from typing import Any, Callable

from repro.dist.lease import Lease, LeaseKeeper
from repro.dist.queue import ShardQueue
from repro.dist.spec import EXHAUSTIVE, SAMPLED, DistError, ShardSpec
from repro.faults.engine import FaultInjectionEngine
from repro.faults.space import FaultSpace
from repro.faults.table import cell_key, timed_classify_cell
from repro.sfi.planners import CampaignPlan
from repro.sfi.runner import execute_plan_items
from repro.telemetry import Telemetry, resolve_telemetry


def tallies_to_arrays(
    tallies: dict[tuple[int, int], list[int]],
    assumed: dict[tuple[int, int], float],
) -> dict[str, np.ndarray]:
    """Encode sampled-shard observations as deterministic arrays.

    ``tallies`` becomes an ``(k, 5)`` int64 array of
    ``[layer, bit, injections, criticals, masked]`` rows and ``assumed``
    an ``(m, 3)`` float64 array of ``[layer, bit, p]`` rows, both sorted
    by (layer, bit) so the encoding is independent of observation order.
    """
    tally_rows = sorted(
        (layer, bit, *counts) for (layer, bit), counts in tallies.items()
    )
    assumed_rows = sorted(
        (float(layer), float(bit), p) for (layer, bit), p in assumed.items()
    )
    return {
        "tallies": np.array(tally_rows, dtype=np.int64).reshape(-1, 5),
        "assumed": np.array(assumed_rows, dtype=np.float64).reshape(-1, 3),
    }


def arrays_to_tallies(
    arrays: dict[str, np.ndarray],
) -> tuple[dict[tuple[int, int], list[int]], dict[tuple[int, int], float]]:
    """Inverse of :func:`tallies_to_arrays`."""
    tallies = {
        (int(row[0]), int(row[1])): [int(row[2]), int(row[3]), int(row[4])]
        for row in np.asarray(arrays["tallies"]).reshape(-1, 5)
    }
    assumed = {
        (int(row[0]), int(row[1])): float(row[2])
        for row in np.asarray(arrays["assumed"]).reshape(-1, 3)
    }
    return tallies, assumed


def resolve_heartbeat_interval(interval: float | None = None) -> float:
    """Heartbeat-event spacing: explicit arg, else env, else per-unit.

    Mirrors :func:`repro.faults.table.resolve_workers`: an explicit
    argument wins, then ``REPRO_HEARTBEAT_INTERVAL`` (seconds), and the
    default of ``0.0`` emits one ``worker_heartbeat`` event per
    completed unit.  Negative values are clamped to 0.
    """
    if interval is None:
        raw = os.environ.get("REPRO_HEARTBEAT_INTERVAL", "").strip()
        if not raw:
            return 0.0
        try:
            interval = float(raw)
        except ValueError as exc:
            raise ValueError(
                f"REPRO_HEARTBEAT_INTERVAL={raw!r} is not a number"
            ) from exc
    return max(0.0, float(interval))


def _plan_attestation(fingerprint: str, backend: Any = None) -> dict:
    """Worker-side plan stamp embedded in every completed shard result.

    Beside the fingerprint and its verification bit, the stamp carries
    the fingerprints this process's verifier declared outcome-compatible
    (``check_plan_vectorized`` proving the vectorized mode bit-identical
    to its exact twin).  The compatibility registry is process-local, so
    without the shard carrying it a standalone merge could never accept
    a mixed-engine fleet.

    A non-reference kernel *backend* additionally stamps its name and
    version — the fingerprint already folds the full attestation, the
    explicit stamp is for human-readable refusal messages and
    ``repro-stats`` display.  Reference-backend stamps are unchanged.
    """
    from repro.check import compatible_fingerprints, is_plan_verified

    meta = {
        "plan_sha256": fingerprint,
        "plan_verified": bool(is_plan_verified(fingerprint)),
    }
    compatible = compatible_fingerprints(fingerprint)
    if compatible:
        meta["plan_compatible_with"] = list(compatible)
    if backend is not None and not backend.is_reference:
        meta["backend"] = {"name": backend.name, "version": backend.version}
    return meta


def plan_attestation_runtime(engine: Any) -> dict:
    """Submit-side runtime entries pinning the verified plan's identity.

    Recorded alongside the campaign so that the merge can demand every
    shard result attest the same verified plan fingerprint.  Engines
    without a plan (module engine) contribute nothing.
    """
    fingerprint = getattr(engine, "plan_fingerprint", None)
    if fingerprint is None:
        return {}
    return {
        "engine": getattr(engine, "kind", "plan"),
        "plan_sha256": fingerprint,
    }


class ExhaustiveContext:
    """Executes exhaustive shards: one (layer, bit) cell per unit."""

    kind = EXHAUSTIVE

    def __init__(self, engine: FaultInjectionEngine, space: FaultSpace) -> None:
        self.engine = engine
        self.space = space

    def attestation(self) -> dict:
        """Worker-side stamp embedded in every completed shard result.

        Plan engines attest the structural fingerprint their verified
        plan carries; the merge refuses results from workers whose plan
        never passed :func:`repro.check.check_plan`.
        """
        fingerprint = getattr(self.engine, "plan_fingerprint", None)
        if fingerprint is None:
            return {}
        return _plan_attestation(
            fingerprint, backend=getattr(self.engine, "backend", None)
        )

    def run_shard(
        self,
        spec: ShardSpec,
        telemetry: Telemetry,
        heartbeat: Callable[[], None],
    ) -> dict[str, np.ndarray]:
        arrays: dict[str, np.ndarray] = {}
        for unit in spec.units:
            layer_idx, bit = int(unit[0]), int(unit[1])
            cell, _seconds, _inferences = timed_classify_cell(
                self.engine, self.space, layer_idx, bit, telemetry
            )
            arrays[f"cell_{cell_key(layer_idx, bit)}"] = cell
            heartbeat()
        return arrays


class SampledContext:
    """Executes sampled shards: one plan item (stratum) per unit.

    Stratum *i* always draws from the ``SeedSequence(seed, spawn_key=(i,))``
    substream, so its samples are identical no matter which shard,
    worker or host runs it — the property the deterministic merge
    relies on.
    """

    kind = SAMPLED

    def __init__(
        self, oracle: Any, space: FaultSpace, plan: CampaignPlan
    ) -> None:
        self.oracle = oracle
        self.space = space
        self.plan = plan

    def attestation(self) -> dict:
        engine = getattr(self.oracle, "engine", None)
        fingerprint = getattr(engine, "plan_fingerprint", None)
        if fingerprint is None:
            return {}
        return _plan_attestation(
            fingerprint, backend=getattr(engine, "backend", None)
        )

    def run_shard(
        self,
        spec: ShardSpec,
        telemetry: Telemetry,
        heartbeat: Callable[[], None],
    ) -> dict[str, np.ndarray]:
        if spec.seed is None:
            raise DistError(f"sampled shard {spec.shard_id} carries no seed")
        indices = [int(u) for u in spec.units]
        out_of_range = [i for i in indices if i >= len(self.plan.items)]
        if out_of_range:
            raise DistError(
                f"shard {spec.shard_id} references plan items "
                f"{out_of_range} but the plan has only "
                f"{len(self.plan.items)}; the worker's plan does not "
                "match the submitted campaign"
            )
        tallies, assumed = execute_plan_items(
            self.plan,
            self.oracle,
            indices,
            seed=int(spec.seed),
            on_item=lambda _idx: heartbeat(),
        )
        return tallies_to_arrays(tallies, assumed)


class ShardWorker:
    """Claims and executes shards until the queue is drained.

    Parameters
    ----------
    queue, context:
        The work queue and the campaign context executing its shards.
    worker_id:
        Stable name recorded in leases and telemetry (defaults to
        ``host:pid``).
    lease_seconds:
        Lease lifetime; the worker heartbeats (and renews) once per
        completed unit, so a shard whose units take longer than this to
        classify individually will be treated as stuck.
    heartbeat_interval:
        Minimum seconds between ``worker_heartbeat`` *events* (default
        0.0: one event per completed unit).  Raising it thins the
        journal on fast campaigns; the lease deadline still advances on
        every unit either way, through the direct renewal path.
        Resolved from ``REPRO_HEARTBEAT_INTERVAL`` when not given.
    max_attempts / backoff_base / backoff_cap:
        Retry policy applied both to this worker's own failures and to
        expired peer leases it releases.
    telemetry:
        Shard lifecycle and per-cell events land here; ``worker_heartbeat``
        events renew the active lease via :class:`LeaseKeeper`.
    on_unit:
        Test hook called after every completed unit (cell or stratum).
    """

    def __init__(
        self,
        queue: ShardQueue,
        context: ExhaustiveContext | SampledContext,
        *,
        worker_id: str | None = None,
        lease_seconds: float = 30.0,
        max_attempts: int = 3,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        poll_seconds: float = 0.05,
        heartbeat_interval: float | None = None,
        telemetry: Telemetry | None = None,
        on_unit: Callable[[], None] | None = None,
    ) -> None:
        self.queue = queue
        self.context = context
        self.worker_id = worker_id or f"{socket.gethostname()}:{os.getpid()}"
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.poll_seconds = poll_seconds
        self.heartbeat_interval = resolve_heartbeat_interval(
            heartbeat_interval
        )
        self.telemetry = resolve_telemetry(telemetry)
        self.on_unit = on_unit
        self._keeper = LeaseKeeper()
        self._units_done = 0
        self._last_heartbeat_t = 0.0  # monotonic; 0.0 = never emitted

    # -- heartbeating ------------------------------------------------------

    def _heartbeat(self, lease: Lease, spec: ShardSpec) -> None:
        """One unit of progress: emit the event and keep the lease alive.

        With telemetry enabled the ``worker_heartbeat`` event renews the
        lease through the :class:`LeaseKeeper` hook (the journal is the
        liveness signal); with telemetry off the lease is renewed
        directly — the deadline must move either way.
        """
        self._units_done += 1
        now_t = time.monotonic()
        due = (
            self._last_heartbeat_t == 0.0
            or now_t - self._last_heartbeat_t >= self.heartbeat_interval
        )
        if self.telemetry.enabled and due:
            self._last_heartbeat_t = now_t
            self.telemetry.emit(
                "worker_heartbeat",
                worker=self.worker_id,
                shard=spec.shard_id,
                units_done=self._units_done,
            )
        else:
            # Event throttled (or telemetry off): the lease deadline
            # must still move with every completed unit.
            lease.maybe_renew()
        if self.on_unit is not None:
            self.on_unit(spec)

    def _emit_idle(self, reason: str) -> None:
        """Record that this worker stopped for lack of work, not speed.

        The cost model reads ``worker_idle`` to distinguish a starved
        fleet (queue drained while capacity remained — submit finer
        shards) from a slow one (workers busy to the end).
        """
        if self.telemetry.enabled:
            self.telemetry.emit(
                "worker_idle",
                worker=self.worker_id,
                reason=reason,
                units_done=self._units_done,
            )

    # -- main loop ---------------------------------------------------------

    def run(self, *, max_shards: int | None = None, wait: bool = True) -> int:
        """Drain the queue; returns the number of shards completed here.

        Exits when the queue holds nothing pending or leased (the
        campaign is complete, or only poisoned shards remain), or after
        *max_shards* completions.  With ``wait=True`` the worker idles
        through other workers' leases and retry backoff windows instead
        of giving up.
        """
        completed = 0
        while max_shards is None or completed < max_shards:
            released = self.queue.release_expired(
                lease_seconds=self.lease_seconds,
                max_attempts=self.max_attempts,
                backoff_base=self.backoff_base,
                backoff_cap=self.backoff_cap,
            )
            if self.telemetry.enabled:
                for shard_id, outcome in released:
                    self.telemetry.emit(
                        "shard_requeue" if outcome == "requeued" else "shard_poison",
                        shard=shard_id,
                        worker=self.worker_id,
                        reason="lease expired",
                    )
            claimed = self.queue.claim(
                worker=self.worker_id, lease_seconds=self.lease_seconds
            )
            if claimed is None:
                status = self.queue.status()
                if not status.pending and not status.leased:
                    # Complete (or only poison left) — nothing to wait on.
                    self._emit_idle("drained")
                    break
                if not wait:
                    self._emit_idle("no_claimable")
                    break
                time.sleep(self.poll_seconds)
                continue
            spec, lease = claimed
            self._keeper.lease = lease
            self.telemetry.on_event = self._keeper.chain(
                self.telemetry.on_event
            )
            if self.telemetry.enabled:
                self.telemetry.emit(
                    "shard_claim",
                    shard=spec.shard_id,
                    worker=self.worker_id,
                    kind=spec.kind,
                    units=len(spec.units),
                    attempt=spec.attempts + 1,
                )
            start = time.monotonic()
            try:
                arrays = self.context.run_shard(
                    spec, self.telemetry, lambda: self._heartbeat(lease, spec)
                )
            except Exception as exc:
                error = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
                outcome = self.queue.fail(
                    spec,
                    error,
                    lease=lease,
                    max_attempts=self.max_attempts,
                    backoff_base=self.backoff_base,
                    backoff_cap=self.backoff_cap,
                )
                if self.telemetry.enabled:
                    self.telemetry.emit(
                        "shard_fail",
                        shard=spec.shard_id,
                        worker=self.worker_id,
                        error=error,
                        outcome=outcome,
                        attempt=spec.attempts + 1,
                    )
                continue
            finally:
                self._keeper.lease = None
            attestation = getattr(self.context, "attestation", dict)()
            self.queue.complete(spec, arrays, lease=lease, meta=attestation)
            completed += 1
            if self.telemetry.enabled:
                self.telemetry.emit(
                    "shard_done",
                    shard=spec.shard_id,
                    worker=self.worker_id,
                    seconds=time.monotonic() - start,
                    units=len(spec.units),
                )
                self.telemetry.counter("dist.shards_completed").add(1)
        return completed


def verify_context_config(
    context: ExhaustiveContext | SampledContext, config: dict
) -> None:
    """Refuse to run shards against a mismatched campaign configuration.

    An exhaustive context must reproduce the submitted engine
    fingerprint (golden weight bits + eval images) exactly — or hold a
    fingerprint the verifier has explicitly attested outcome-compatible
    with it (a vectorized worker joining an exact-engine campaign, or
    vice versa); a worker holding retrained weights or a different eval
    set would silently corrupt the merged table otherwise.
    """
    if config.get("kind") != context.kind:
        raise DistError(
            f"campaign kind {config.get('kind')!r} does not match the "
            f"worker context kind {context.kind!r}"
        )
    if isinstance(context, ExhaustiveContext):
        from repro.check import fingerprints_compatible

        fingerprint = context.engine.fingerprint()
        expected = config.get("golden_sha256")
        if (
            expected is not None
            and fingerprint != expected
            and not fingerprints_compatible(fingerprint, expected)
        ):
            raise DistError(
                "engine fingerprint mismatch: campaign was submitted for "
                f"golden weights {expected[:12]}, this worker rebuilt "
                f"{fingerprint[:12]} — refusing to classify shards "
                "(retrained weights, a different eval set, or an engine "
                "not attested outcome-compatible?)"
            )
        sizes = [layer.size for layer in context.space.layers]
        if config.get("layer_sizes") not in (None, sizes):
            raise DistError(
                "fault-space shape mismatch between the submitted "
                "campaign and this worker's model"
            )


def spec_metadata_matches(meta: dict, campaign: dict) -> str | None:
    """Check one done-shard's embedded identity against the campaign.

    Returns ``None`` when consistent, else a description of the
    mismatch (used by the merge to refuse foreign results).
    """
    if meta.get("config_hash") != campaign.get("config_hash"):
        return (
            f"shard {meta.get('shard_id')} was produced under config "
            f"{str(meta.get('config_hash'))[:12]}, campaign is "
            f"{str(campaign.get('config_hash'))[:12]}"
        )
    if meta.get("shard_id") not in campaign.get("shards", []):
        return (
            f"shard {meta.get('shard_id')} is not part of this campaign"
        )
    return None
