"""File-backed shard queue: ``pending/ -> leased/ -> done/`` (or ``poison/``).

The queue is a directory tree that any number of processes — on this
host or on others sharing the filesystem — drain cooperatively:

.. code-block:: text

    <root>/
      campaign.json          # config + fingerprint + ordered shard ids
      pending/<id>.json      # shard specs awaiting a worker
      leased/<id>.json       # claimed specs (+ <id>.lease.json deadlines)
      done/<id>.npz          # per-shard results (verified store + MANIFEST)
      poison/<id>.json       # shards that failed repeatedly, with history

Every transition is a single atomic ``rename`` or an atomic write from
:mod:`repro.store`, so a claim can never be won by two workers, a crash
can never leave a half-written spec or result, and readers can trust the
``done/`` manifest checksums at merge time.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.dist.lease import Lease, lease_deadline, read_lease
from repro.dist.spec import DistError, ShardSpec, config_hash, split_shard
from repro.store import atomic_write_bytes, load_verified_npz, save_verified_npz

CAMPAIGN_NAME = "campaign.json"

#: Suffix marking a pending spec mid-split.  Workers claim via
#: ``glob("*.json")``, so the renamed file is invisible to them — the
#: rename is the rebalancer's atomic "claim" on the shard.
SPLITTING_SUFFIX = ".json.splitting"


def expand_splits(
    specs: list[ShardSpec], splits: dict[str, dict]
) -> list[ShardSpec]:
    """Replay recorded splits over freshly derived shard specs.

    A resubmitted campaign re-derives the *original* partition from its
    config; any shard the rebalancer split since must be expanded into
    the same children (splits are pure functions of (spec, parts), so
    the recorded part count reproduces the recorded child ids exactly).
    Recursive: a child split again expands again.
    """
    expanded: list[ShardSpec] = []
    for spec in specs:
        record = splits.get(spec.shard_id)
        if not record:
            expanded.append(spec)
            continue
        children = split_shard(spec, int(record["parts"]))
        derived = [child.shard_id for child in children]
        if derived != list(record["children"]):
            raise DistError(
                f"recorded split of shard {spec.shard_id} does not "
                f"reproduce (expected {record['children']}, derived "
                f"{derived}); the queue metadata is corrupt"
            )
        expanded.extend(expand_splits(children, splits))
    return expanded


@dataclass
class QueueStatus:
    """Snapshot of a queue's state (see :meth:`ShardQueue.status`)."""

    pending: list[str] = field(default_factory=list)
    leased: list[dict] = field(default_factory=list)
    done: list[str] = field(default_factory=list)
    poisoned: list[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return (
            len(self.pending)
            + len(self.leased)
            + len(self.done)
            + len(self.poisoned)
        )

    @property
    def complete(self) -> bool:
        return not self.pending and not self.leased and not self.poisoned


class ShardQueue:
    """One campaign's work queue rooted at *root*."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.pending_dir = self.root / "pending"
        self.leased_dir = self.root / "leased"
        self.done_dir = self.root / "done"
        self.poison_dir = self.root / "poison"

    # -- campaign metadata -----------------------------------------------

    @property
    def campaign_path(self) -> Path:
        return self.root / CAMPAIGN_NAME

    def campaign(self) -> dict:
        """The campaign record written at submit time."""
        try:
            with open(self.campaign_path, encoding="utf-8") as stream:
                return json.load(stream)
        except (OSError, json.JSONDecodeError) as exc:
            raise DistError(
                f"no submitted campaign at {self.root} "
                f"(missing or unreadable {CAMPAIGN_NAME}): {exc}"
            ) from exc

    # -- submission --------------------------------------------------------

    def submit(
        self,
        specs: list[ShardSpec],
        *,
        config: dict,
        runtime: dict | None = None,
    ) -> int:
        """Publish the campaign and enqueue its shards.

        Re-submitting the *same* campaign (matching config fingerprint)
        is the resume path: shards already in ``done/`` stay done, and
        only the missing ones are re-enqueued.  Submitting a *different*
        campaign into a non-empty root is refused — stale shards must
        never leak into a new campaign.

        Returns the number of shards actually enqueued.
        """
        cfg_hash = config_hash(config)
        for spec in specs:
            if spec.config_hash != cfg_hash:
                raise DistError(
                    f"shard {spec.shard_id} was built for config "
                    f"{spec.config_hash[:12]}, not {cfg_hash[:12]}"
                )
        splits: dict[str, dict] = {}
        if self.campaign_path.exists():
            existing = self.campaign()
            if existing.get("config_hash") != cfg_hash:
                raise DistError(
                    f"{self.root} already holds campaign "
                    f"{existing.get('config_hash', '?')[:12]} with a "
                    f"different config fingerprint; refusing to mix "
                    f"shards (use a fresh directory)"
                )
            # The resume path must honour rebalancer splits recorded by
            # the earlier submission: re-enqueue the children, never the
            # split parents.
            splits = existing.get("splits", {})
            specs = expand_splits(specs, splits)
        for directory in (
            self.pending_dir,
            self.leased_dir,
            self.done_dir,
            self.poison_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        record = {
            "config": config,
            "config_hash": cfg_hash,
            "campaign_id": cfg_hash[:12],
            "shards": [spec.shard_id for spec in specs],
            "runtime": runtime or {},
        }
        if splits:
            record["splits"] = splits
        atomic_write_bytes(
            self.campaign_path,
            (json.dumps(record, indent=2, sort_keys=True) + "\n").encode(
                "utf-8"
            ),
        )
        done = self.done_ids()
        enqueued = 0
        for spec in specs:
            if spec.shard_id in done:
                continue
            if (self.leased_dir / f"{spec.shard_id}.json").exists():
                continue
            if (self.poison_dir / f"{spec.shard_id}.json").exists():
                continue
            path = self.pending_dir / f"{spec.shard_id}.json"
            if path.exists():
                continue
            atomic_write_bytes(path, (spec.to_json() + "\n").encode("utf-8"))
            enqueued += 1
        return enqueued

    # -- rebalancing -------------------------------------------------------

    def splitting_path(self, shard_id: str) -> Path:
        return self.pending_dir / f"{shard_id}{SPLITTING_SUFFIX}"

    def begin_split(self, shard_id: str) -> ShardSpec | None:
        """Atomically take one *pending* shard out of workers' sight.

        Renames ``pending/<id>.json`` to the ``.splitting`` name (which
        no worker globs) and returns the spec, or ``None`` if the shard
        was claimed/completed first — the split loses claim races by
        design, a running worker beats a re-partition.
        """
        source = self.pending_dir / f"{shard_id}.json"
        target = self.splitting_path(shard_id)
        try:
            os.rename(source, target)
        except OSError:
            return None
        spec = self._read_spec(target)
        if spec is None:
            self.abort_split(shard_id)  # torn spec: leave it to fail()
            return None
        return spec

    def abort_split(self, shard_id: str) -> None:
        """Put an un-committed split's parent back into the queue."""
        try:
            os.rename(
                self.splitting_path(shard_id),
                self.pending_dir / f"{shard_id}.json",
            )
        except OSError:
            pass

    def commit_split(
        self, spec: ShardSpec, children: list[ShardSpec]
    ) -> None:
        """Replace a split parent with its children, atomically.

        The campaign.json rewrite is the commit point: the parent id is
        replaced in ``shards`` (order preserved) and the split recorded
        under ``splits`` so resubmissions and crash recovery re-derive
        the same children.  Only then are the child specs enqueued and
        the parent's ``.splitting`` file dropped — a crash in between
        leaves a committed record from which :meth:`recover_splits`
        re-derives the missing children deterministically.

        Single-writer by contract: the supervisor's rebalance pass is
        the only thing that rewrites campaign.json after submission.
        """
        campaign = self.campaign()
        shards = list(campaign.get("shards", []))
        if spec.shard_id not in shards:
            raise DistError(
                f"cannot split shard {spec.shard_id}: not part of the "
                f"campaign at {self.root}"
            )
        for child in children:
            if child.config_hash != campaign.get("config_hash"):
                raise DistError(
                    f"split child {child.shard_id} belongs to config "
                    f"{child.config_hash[:12]}, campaign is "
                    f"{str(campaign.get('config_hash'))[:12]}"
                )
        at = shards.index(spec.shard_id)
        campaign["shards"] = (
            shards[:at]
            + [child.shard_id for child in children]
            + shards[at + 1 :]
        )
        splits = campaign.setdefault("splits", {})
        splits[spec.shard_id] = {
            "children": [child.shard_id for child in children],
            "parts": len(children),
        }
        atomic_write_bytes(
            self.campaign_path,
            (json.dumps(campaign, indent=2, sort_keys=True) + "\n").encode(
                "utf-8"
            ),
        )
        self._enqueue_children(children)
        try:
            self.splitting_path(spec.shard_id).unlink()
        except OSError:
            pass

    def _enqueue_children(self, children: list[ShardSpec]) -> None:
        done = self.done_ids()
        for child in children:
            if child.shard_id in done:
                continue
            path = self.pending_dir / f"{child.shard_id}.json"
            if path.exists():
                continue
            if (self.leased_dir / f"{child.shard_id}.json").exists():
                continue
            atomic_write_bytes(
                path, (child.to_json() + "\n").encode("utf-8")
            )

    def recover_splits(self) -> list[str]:
        """Repair splits interrupted by a crash; returns touched ids.

        Two windows exist.  Before the campaign.json rewrite the split
        never happened — the ``.splitting`` parent goes straight back to
        pending.  After it, the split is committed — the children are
        re-derived from the parent spec and the recorded part count
        (pure, so ids match the record) and any missing ones enqueued.
        """
        if not self.pending_dir.is_dir():
            return []
        recovered = []
        try:
            campaign = self.campaign()
        except DistError:
            campaign = {}
        splits = campaign.get("splits", {})
        for path in sorted(self.pending_dir.glob(f"*{SPLITTING_SUFFIX}")):
            shard_id = path.name[: -len(SPLITTING_SUFFIX)]
            record = splits.get(shard_id)
            if record is None:
                self.abort_split(shard_id)
                recovered.append(shard_id)
                continue
            spec = self._read_spec(path)
            if spec is not None:
                self._enqueue_children(
                    split_shard(spec, int(record["parts"]))
                )
            try:
                path.unlink()
            except OSError:
                pass
            recovered.append(shard_id)
        return recovered

    # -- claiming ----------------------------------------------------------

    def _read_spec(self, path: Path) -> ShardSpec | None:
        try:
            return ShardSpec.from_json(path.read_text(encoding="utf-8"))
        except (OSError, ValueError, KeyError):
            return None

    def claim(
        self,
        *,
        worker: str,
        lease_seconds: float,
        now: float | None = None,
    ) -> tuple[ShardSpec, Lease] | None:
        """Atomically take one pending shard, or ``None`` if none is ready.

        The winning rename moves the spec into ``leased/``; the lease
        file written right after carries the deadline.  Shards inside
        their retry backoff window (``not_before`` in the future) are
        skipped; shards that already have a result in ``done/`` are
        dropped rather than re-executed.
        """
        now = time.time() if now is None else now
        done = self.done_ids()
        for path in sorted(self.pending_dir.glob("*.json")):
            spec = self._read_spec(path)
            if spec is None:
                continue
            if spec.shard_id in done:
                # A previous holder finished after its lease expired; the
                # requeued copy is redundant.
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            if spec.not_before > now:
                continue
            target = self.leased_dir / path.name
            try:
                os.rename(path, target)
            except OSError:
                continue  # lost the race to another worker
            # Refresh the mtime so the no-lease-file fallback deadline
            # counts from the claim, not from submission.
            try:
                os.utime(target)
            except OSError:
                pass
            lease = Lease.acquire(
                self.leased_dir / f"{spec.shard_id}.lease.json",
                shard_id=spec.shard_id,
                worker=worker,
                lease_seconds=lease_seconds,
            )
            return spec, lease
        return None

    # -- completion --------------------------------------------------------

    def result_path(self, shard_id: str) -> Path:
        return self.done_dir / f"{shard_id}.npz"

    def complete(
        self,
        spec: ShardSpec,
        arrays: dict[str, np.ndarray],
        *,
        lease: Lease | None = None,
        meta: dict | None = None,
    ) -> Path:
        """Persist a shard's result and retire the spec.

        The result lands in ``done/`` through the verified store (atomic
        write + ``MANIFEST.json`` checksum), stamped with the shard's
        identity so the merge can refuse results from a different
        campaign.  *meta* adds worker-side attestations (e.g. the
        verified plan fingerprint) to that stamp.  Completion is
        idempotent: a worker whose lease expired mid-run may finish
        after a re-dispatch already did, and simply overwrites the
        identical result.
        """
        payload = dict(arrays)
        payload["shard"] = np.frombuffer(
            json.dumps(
                {
                    "shard_id": spec.shard_id,
                    "kind": spec.kind,
                    "index": spec.index,
                    "total": spec.total,
                    "config_hash": spec.config_hash,
                    "units": [
                        list(u) if isinstance(u, tuple) else u
                        for u in spec.units
                    ],
                    "seed": spec.seed,
                    "attempts": spec.attempts,
                    **(meta or {}),
                },
                sort_keys=True,
            ).encode("utf-8"),
            dtype=np.uint8,
        )
        self.done_dir.mkdir(parents=True, exist_ok=True)
        path = self.result_path(spec.shard_id)
        save_verified_npz(path, payload)
        for stale in (
            self.leased_dir / f"{spec.shard_id}.json",
            self.pending_dir / f"{spec.shard_id}.json",
        ):
            try:
                stale.unlink()
            except OSError:
                pass
        if lease is not None:
            lease.release()
        return path

    def load_result(
        self, shard_id: str, *, regenerate: str | None = None
    ) -> tuple[dict, dict[str, np.ndarray]]:
        """Load and validate one shard result: ``(shard_meta, arrays)``."""
        archive = load_verified_npz(
            self.result_path(shard_id), regenerate=regenerate
        )
        arrays = dict(archive)
        meta_raw = arrays.pop("shard", None)
        if meta_raw is None:
            raise DistError(
                f"shard result {self.result_path(shard_id)} carries no "
                "shard metadata; it was not written by this queue"
            )
        meta = json.loads(bytes(meta_raw).decode("utf-8"))
        return meta, arrays

    # -- failure handling --------------------------------------------------

    def fail(
        self,
        spec: ShardSpec,
        error: str,
        *,
        lease: Lease | None = None,
        max_attempts: int = 3,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        now: float | None = None,
    ) -> str:
        """Record a failed attempt: requeue with backoff or poison.

        Returns ``"requeued"`` or ``"poisoned"``.  The backoff doubles
        per attempt (capped), written into the spec's ``not_before`` so
        every worker observes it.

        The requeue is a single atomic rename of the *leased* copy
        (rewritten in place with the bumped attempt count first).  The
        earlier write-pending-then-unlink-leased ordering had a lost
        shard race, found by ``repro-check protocol``: a peer could
        claim the freshly requeued pending copy — renaming it back to
        ``leased/<id>.json`` — before the failing process unlinked that
        very path, destroying the new claimer's spec file.  A rename
        moves exactly one inode, so it can never clobber a concurrent
        claim, and every crash point leaves the spec in ``leased/``
        (re-dispatched by :meth:`release_expired`) or in its target.
        """
        # The backoff deadline is wall-clock by design: every worker must
        # observe the same real-time gate.  It lands in the spec's
        # not_before field, never in a fingerprint.
        now = time.time() if now is None else now  # repro-check: ignore[D203]
        attempts = spec.attempts + 1
        delay = min(backoff_base * (2 ** (attempts - 1)), backoff_cap)
        updated = spec.with_failure(error, not_before=now + delay)
        if attempts >= max_attempts:
            outcome = "poisoned"
            target = self.poison_dir / f"{spec.shard_id}.json"
        else:
            outcome = "requeued"
            target = self.pending_dir / f"{spec.shard_id}.json"
        target.parent.mkdir(parents=True, exist_ok=True)
        leased = self.leased_dir / f"{spec.shard_id}.json"
        atomic_write_bytes(leased, (updated.to_json() + "\n").encode("utf-8"))
        try:
            os.rename(leased, target)
        except OSError:
            pass
        if lease is not None:
            lease.release()
        return outcome

    def release_expired(
        self,
        *,
        lease_seconds: float,
        max_attempts: int = 3,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        now: float | None = None,
    ) -> list[tuple[str, str]]:
        """Re-dispatch every leased shard whose deadline has passed.

        Any process may call this — peer workers do it before each claim,
        the supervisor on every tick — so a single dead worker never
        wedges the campaign.  Returns ``[(shard_id, outcome), ...]``
        where outcome is ``"requeued"`` or ``"poisoned"``.
        """
        now = time.time() if now is None else now
        released = []
        for path in sorted(self.leased_dir.glob("*.json")):
            if path.name.endswith(".lease.json"):
                continue
            spec = self._read_spec(path)
            if spec is None:
                continue
            lease_path = self.leased_dir / f"{spec.shard_id}.lease.json"
            deadline = lease_deadline(
                lease_path, path, default_lease_seconds=lease_seconds
            )
            if deadline > now:
                continue
            record = read_lease(lease_path) or {}
            holder = record.get("worker", "unknown worker")
            outcome = self.fail(
                spec,
                f"lease expired (held by {holder}, deadline {deadline:.3f})",
                max_attempts=max_attempts,
                backoff_base=backoff_base,
                backoff_cap=backoff_cap,
                now=now,
            )
            try:
                lease_path.unlink()
            except OSError:
                pass
            released.append((spec.shard_id, outcome))
        return released

    # -- inspection --------------------------------------------------------

    def done_ids(self) -> set[str]:
        if not self.done_dir.is_dir():
            return set()
        return {path.stem for path in self.done_dir.glob("*.npz")}

    def poisoned(self) -> list[ShardSpec]:
        specs = []
        if self.poison_dir.is_dir():
            for path in sorted(self.poison_dir.glob("*.json")):
                spec = self._read_spec(path)
                if spec is not None:
                    specs.append(spec)
        return specs

    def status(self, *, now: float | None = None) -> QueueStatus:
        now = time.time() if now is None else now
        status = QueueStatus()
        if self.pending_dir.is_dir():
            status.pending = sorted(
                path.stem for path in self.pending_dir.glob("*.json")
            )
        if self.leased_dir.is_dir():
            for path in sorted(self.leased_dir.glob("*.json")):
                if path.name.endswith(".lease.json"):
                    continue
                shard_id = path.stem
                lease_path = self.leased_dir / f"{shard_id}.lease.json"
                record = read_lease(lease_path) or {}
                deadline = lease_deadline(
                    lease_path, path, default_lease_seconds=0.0
                )
                status.leased.append(
                    {
                        "shard_id": shard_id,
                        "worker": record.get("worker"),
                        "heartbeats": record.get("heartbeats", 0),
                        "deadline": deadline,
                        "expires_in": deadline - now,
                    }
                )
        status.done = sorted(self.done_ids())
        status.poisoned = [spec.shard_id for spec in self.poisoned()]
        return status

    def is_complete(self) -> bool:
        """Every submitted shard has a verified result in ``done/``."""
        try:
            shards = self.campaign()["shards"]
        except DistError:
            return False
        done = self.done_ids()
        return all(shard_id in done for shard_id in shards)
