"""Shard leases: time-bounded ownership fed by worker heartbeats.

A worker that claims a shard writes a lease file next to the leased spec
recording who owns it and a wall-clock deadline.  The worker's telemetry
``worker_heartbeat`` events renew the lease (through
:meth:`LeaseKeeper.on_event` or the direct :meth:`Lease.maybe_renew`
path when telemetry is off); a worker that dies or wedges stops
heartbeating, its deadline passes, and any process scanning the queue
(peer worker or supervisor) re-dispatches the shard.

Wall-clock time is used deliberately: leases must be comparable across
hosts sharing a filesystem, which monotonic clocks are not.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.store import atomic_write_bytes
from repro.telemetry.events import Event


@dataclass
class Lease:
    """Ownership of one leased shard."""

    path: Path  # the ``<shard_id>.lease.json`` file
    shard_id: str
    worker: str
    lease_seconds: float
    deadline: float = 0.0
    heartbeats: int = 0
    #: Wall clock of the first lease write; with ``heartbeats`` it gives
    #: observers a per-worker progress rate (the rebalancer's input).
    acquired: float = 0.0
    #: Renewals are throttled to a fraction of the lease so a per-cell
    #: heartbeat storm does not turn into a file-write storm.
    _last_write: float = 0.0

    @classmethod
    def acquire(
        cls,
        path: str | os.PathLike,
        *,
        shard_id: str,
        worker: str,
        lease_seconds: float,
    ) -> "Lease":
        """Write a fresh lease file and return the live handle."""
        lease = cls(
            path=Path(path),
            shard_id=shard_id,
            worker=worker,
            lease_seconds=lease_seconds,
        )
        now = time.time()
        lease.acquired = now
        lease._write(now)
        return lease

    def _write(self, now: float) -> None:
        self.deadline = now + self.lease_seconds
        self._last_write = now
        atomic_write_bytes(
            self.path,
            (
                json.dumps(
                    {
                        "shard_id": self.shard_id,
                        "worker": self.worker,
                        "pid": os.getpid(),
                        "lease_seconds": self.lease_seconds,
                        "deadline": self.deadline,
                        "heartbeats": self.heartbeats,
                        "acquired": self.acquired,
                    },
                    sort_keys=True,
                )
                + "\n"
            ).encode("utf-8"),
        )

    def renew(self, now: float | None = None) -> None:
        """Push the deadline out unconditionally."""
        self.heartbeats += 1
        self._write(time.time() if now is None else now)

    def maybe_renew(self, now: float | None = None) -> bool:
        """Renew unless the lease was refreshed very recently.

        Returns whether a renewal was written.  The throttle keeps the
        deadline at least half a lease in the future without rewriting
        the file on every heartbeat.
        """
        now = time.time() if now is None else now
        self.heartbeats += 1
        if now - self._last_write < self.lease_seconds / 4:
            return False
        self._write(now)
        return True

    def release(self) -> None:
        """Drop the lease file (shard finished or handed back)."""
        try:
            self.path.unlink()
        except OSError:
            pass


class LeaseKeeper:
    """Telemetry hook renewing a lease on every ``worker_heartbeat``.

    Chainable: the previous ``on_event`` hook (a progress printer, say)
    keeps firing.  This is how lease timeouts are *fed by* the telemetry
    heartbeat stream rather than by a separate timer thread::

        keeper = LeaseKeeper()
        telemetry.on_event = keeper.chain(telemetry.on_event)
        keeper.lease = lease   # set at claim time, cleared at release
    """

    def __init__(self) -> None:
        self.lease: Lease | None = None
        self._next: Callable[[Event], None] | None = None

    def chain(
        self, next_hook: Callable[[Event], None]
    ) -> Callable[[Event], None]:
        # Idempotent: re-chaining the keeper onto itself (bound-method
        # equality, not identity — every attribute access builds a fresh
        # bound method) must not create a cycle.
        if next_hook != self.on_event:
            self._next = next_hook
        return self.on_event

    def on_event(self, event: Event) -> None:
        if event.type == "worker_heartbeat" and self.lease is not None:
            self.lease.maybe_renew()
        if self._next is not None:
            self._next(event)


def read_lease(path: str | os.PathLike) -> dict | None:
    """Parse a lease file (``None`` when absent or torn)."""
    try:
        with open(path, encoding="utf-8") as stream:
            record = json.load(stream)
    except (OSError, json.JSONDecodeError):
        return None
    return record if isinstance(record, dict) else None


def lease_deadline(
    lease_path: Path, spec_path: Path, *, default_lease_seconds: float
) -> float:
    """Effective deadline of a leased shard.

    Normally the lease file's recorded deadline.  If the worker died in
    the instant between claiming (renaming the spec) and writing its
    lease file, fall back to the spec file's mtime plus the default
    lease — the shard must still expire, just on the coarser clock.
    """
    record = read_lease(lease_path)
    if record is not None and isinstance(record.get("deadline"), (int, float)):
        return float(record["deadline"])
    try:
        return spec_path.stat().st_mtime + default_lease_seconds
    except OSError:
        return 0.0
