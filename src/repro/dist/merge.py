"""Deterministic merge of per-shard results.

The merge is a pure function of the ``done/`` directory: shard results
are loaded through the verified store (zip structure + ``MANIFEST.json``
checksum), each result's embedded config fingerprint is checked against
the campaign's, and the table/result is assembled in a fixed order — so
the output is bit-identical to a serial run no matter how many shards or
workers produced it, in what order they finished, or how many times a
shard was re-dispatched after a kill.
"""

from __future__ import annotations

import os
from typing import Any, Iterator

import numpy as np

from repro.dist.queue import ShardQueue
from repro.dist.spec import EXHAUSTIVE, SAMPLED, DistError
from repro.dist.worker import arrays_to_tallies, spec_metadata_matches
from repro.faults.engine import FaultOutcome
from repro.faults.space import FaultSpace
from repro.faults.table import OutcomeTable, cell_key
from repro.ieee754 import format_by_name
from repro.sfi.granularity import Granularity
from repro.sfi.results import CampaignResult
from repro.telemetry import Telemetry, resolve_telemetry


class MergeError(DistError):
    """The shard results cannot be merged into one campaign result."""


def _ready_campaign(
    queue_or_root: ShardQueue | str | os.PathLike,
    *,
    kind: str,
    allow_partial: bool,
) -> tuple[ShardQueue, dict]:
    queue = (
        queue_or_root
        if isinstance(queue_or_root, ShardQueue)
        else ShardQueue(queue_or_root)
    )
    campaign = queue.campaign()
    config = campaign.get("config", {})
    if config.get("kind") != kind:
        raise MergeError(
            f"campaign at {queue.root} is {config.get('kind')!r}, "
            f"expected {kind!r}"
        )
    if not allow_partial:
        status = queue.status()
        done = set(status.done)
        missing = [s for s in campaign["shards"] if s not in done]
        if missing:
            raise MergeError(
                f"campaign at {queue.root} is incomplete: "
                f"{len(missing)}/{len(campaign['shards'])} shards missing "
                f"({len(status.pending)} pending, {len(status.leased)} "
                f"leased, {len(status.poisoned)} poisoned); run more "
                "workers (or inspect poison/) before merging"
            )
    return queue, campaign


def _expected_plan_attestation(campaign: dict) -> str | None:
    """Plan fingerprint every shard must attest, or None if not required.

    Plan-engine campaigns submitted by this version record the verified
    plan's structural sha256 in the campaign runtime; older queues (or
    module-engine campaigns) carry none and are merged as before.  Only
    exhaustive shards are gated: sampled shards may legitimately replay
    from a cached outcome table without holding any plan at all.
    """
    if campaign.get("config", {}).get("kind") != EXHAUSTIVE:
        return None
    runtime = campaign.get("runtime") or {}
    if runtime.get("engine") in ("plan", "plan_vectorized"):
        return runtime.get("plan_sha256")
    return None


def _shard_results(
    queue: ShardQueue, campaign: dict
) -> Iterator[tuple[str, dict, dict[str, np.ndarray]]]:
    """Yield each done shard's (meta, arrays), refusing foreign results."""
    expected_plan = _expected_plan_attestation(campaign)
    for shard_id in campaign["shards"]:
        if not queue.result_path(shard_id).is_file():
            continue  # allow_partial merges skip missing shards
        meta, arrays = queue.load_result(
            shard_id,
            regenerate=(
                "delete the file and re-run `repro-dist work "
                f"{queue.root}`"
            ),
        )
        problem = spec_metadata_matches(meta, campaign)
        if problem is not None:
            raise MergeError(
                f"refusing to merge {queue.result_path(shard_id)}: {problem}"
            )
        if expected_plan is not None:
            attested = meta.get("plan_sha256")
            # Mixed-engine fleets are fine exactly when a verifier
            # attested the engines bit-identical: a vectorized worker's
            # fingerprint is accepted against an exact campaign (and
            # vice versa) only via the explicit compatibility registry
            # check_plan_vectorized populates.  The registry is
            # process-local, so the shard also carries the worker's own
            # declarations — a standalone merge process, which never
            # built either plan, honours those.
            from repro.check import fingerprints_compatible

            matches = attested == expected_plan or (
                attested is not None
                and (
                    fingerprints_compatible(attested, expected_plan)
                    or expected_plan
                    in meta.get("plan_compatible_with", ())
                )
            )
            if not matches or not meta.get("plan_verified"):
                raise MergeError(
                    f"refusing to merge {queue.result_path(shard_id)}: the "
                    "shard does not attest the campaign's verified "
                    f"execution plan (campaign plan {expected_plan[:12]}, "
                    f"shard attests {str(attested)[:12]} "
                    f"verified={bool(meta.get('plan_verified'))}) — it was "
                    "produced by a worker whose plan never passed "
                    "repro-check verification or whose engine is not "
                    "attested outcome-compatible with the campaign's"
                )
        yield shard_id, meta, arrays


def merge_exhaustive(
    queue_or_root: ShardQueue | str | os.PathLike,
    *,
    telemetry: Telemetry | None = None,
) -> OutcomeTable:
    """Reassemble a sharded exhaustive campaign into an `OutcomeTable`.

    The outcome arrays are bit-identical to
    :meth:`OutcomeTable.from_exhaustive` run serially with the same
    engine and space.  Raises :class:`MergeError` if any shard is
    missing, fails verification, or belongs to a different campaign
    configuration.
    """
    queue, campaign = _ready_campaign(
        queue_or_root, kind=EXHAUSTIVE, allow_partial=False
    )
    config = campaign["config"]
    layer_sizes = config["layer_sizes"]
    fmt = format_by_name(config["fmt"])
    bits = int(config.get("bits", fmt.total_bits))
    n_models = len(config["fault_models"])

    cells: dict[tuple[int, int], np.ndarray] = {}
    for shard_id, meta, arrays in _shard_results(queue, campaign):
        for unit in meta["units"]:
            layer_idx, bit = int(unit[0]), int(unit[1])
            name = f"cell_{cell_key(layer_idx, bit)}"
            if name not in arrays:
                raise MergeError(
                    f"shard {shard_id} result is missing cell "
                    f"{cell_key(layer_idx, bit)} it was assigned"
                )
            cell = np.asarray(arrays[name], dtype=np.uint8)
            expected = (layer_sizes[layer_idx], n_models)
            if cell.shape != expected:
                raise MergeError(
                    f"shard {shard_id} cell {cell_key(layer_idx, bit)} has "
                    f"shape {cell.shape}, expected {expected}"
                )
            cells[(layer_idx, bit)] = cell

    missing_cells = [
        cell_key(layer_idx, bit)
        for layer_idx in range(len(layer_sizes))
        for bit in range(bits)
        if (layer_idx, bit) not in cells
    ]
    if missing_cells:
        raise MergeError(
            f"merged shards do not cover the fault space: "
            f"{len(missing_cells)} cells missing "
            f"(first: {missing_cells[:4]})"
        )

    outcomes = []
    for layer_idx, size in enumerate(layer_sizes):
        table = np.empty((size, bits, n_models), dtype=np.uint8)
        for bit in range(bits):
            table[:, bit, :] = cells[(layer_idx, bit)]
        outcomes.append(table)
    total = sum(size * bits * n_models for size in layer_sizes)
    masked = sum(int((arr == FaultOutcome.MASKED).sum()) for arr in outcomes)
    metadata = {
        "fmt": config["fmt"],
        "fault_models": list(config["fault_models"]),
        "policy": config["policy"],
        "threshold": config["threshold"],
        "eval_images": config["eval_images"],
        "inference_count": total - masked,
        "shards": len(campaign["shards"]),
        "merged": True,
    }
    runtime = campaign.get("runtime", {})
    if "golden_accuracy" in runtime:
        metadata["golden_accuracy"] = runtime["golden_accuracy"]
    if "model" in runtime:
        metadata["model"] = runtime["model"]
    tele = resolve_telemetry(telemetry)
    if tele.enabled:
        tele.emit(
            "merge_done",
            kind=EXHAUSTIVE,
            shards=len(campaign["shards"]),
            faults=total,
            masked=masked,
        )
    return OutcomeTable(outcomes, metadata=metadata)


def merge_sampled(
    queue_or_root: ShardQueue | str | os.PathLike,
    space: FaultSpace,
    *,
    telemetry: Telemetry | None = None,
) -> CampaignResult:
    """Reassemble a sharded sampled campaign into a `CampaignResult`.

    Per-stratum tallies and assumed priors are summed across shards;
    because every stratum draws from its own seed substream, the merged
    result equals a serial :meth:`CampaignRunner.run` with the same
    plan and seed exactly (tallies, estimates and all).
    """
    queue, campaign = _ready_campaign(
        queue_or_root, kind=SAMPLED, allow_partial=False
    )
    config = campaign["config"]
    sizes = [layer.size for layer in space.layers]
    if config.get("layer_sizes") != sizes:
        raise MergeError(
            "the fault space handed to merge_sampled does not match the "
            f"campaign (layer sizes {config.get('layer_sizes')} vs {sizes})"
        )
    result = CampaignResult(
        method=config["method"],
        granularity=Granularity(config["granularity"]),
        t=float(config["t"]),
        space=space,
        seed=int(config["seed"]),
    )
    for _shard_id, _meta, arrays in _shard_results(queue, campaign):
        tallies, assumed = arrays_to_tallies(arrays)
        for (layer, bit), counts in tallies.items():
            tally = result.cell_tallies.setdefault((layer, bit), [0, 0, 0])
            tally[0] += counts[0]
            tally[1] += counts[1]
            tally[2] += counts[2]
        result.assumed_p.update(assumed)
    tele = resolve_telemetry(telemetry)
    if tele.enabled:
        tele.emit(
            "merge_done",
            kind=SAMPLED,
            shards=len(campaign["shards"]),
            injections=result.total_injections,
            criticals=result.total_criticals,
        )
    return result


def save_merged_table(
    queue_or_root: ShardQueue | str | os.PathLike,
    path: str | os.PathLike,
    **kwargs: Any,
) -> OutcomeTable:
    """Merge an exhaustive campaign and persist the table (verified .npz)."""
    table = merge_exhaustive(queue_or_root, **kwargs)
    table.save(path)
    return table
