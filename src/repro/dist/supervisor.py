"""Campaign supervision: lease expiry, local worker fleets, end-to-end runs.

The :class:`Supervisor` owns the retry policy and periodically ticks the
queue — releasing expired leases and poisoning shards that failed too
often.  :func:`run_sharded_exhaustive` and :func:`run_sharded_campaign`
bundle the whole lifecycle for the common single-host case: submit,
fork a local worker fleet, supervise until drained, merge.  Multi-host
campaigns use the same queue directory through the ``repro-dist`` CLI
instead (any worker that can see the filesystem can drain shards).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Callable
from dataclasses import dataclass

from repro.dist.merge import merge_exhaustive, merge_sampled
from repro.dist.queue import ShardQueue
from repro.dist.rebalance import Rebalancer
from repro.dist.spec import (
    DistError,
    make_exhaustive_shards,
    make_sampled_shards,
)
from repro.dist.worker import (
    ExhaustiveContext,
    SampledContext,
    ShardWorker,
    plan_attestation_runtime,
)
from repro.faults.engine import FaultInjectionEngine
from repro.faults.space import FaultSpace
from repro.faults.table import OutcomeTable, resolve_workers
from repro.sfi.planners import CampaignPlan
from repro.sfi.results import CampaignResult
from repro.telemetry import Telemetry, resolve_telemetry


@dataclass(frozen=True)
class RetryPolicy:
    """How long leases live and how failures are retried.

    ``backoff_base`` doubles per attempt up to ``backoff_cap``; a shard
    reaching ``max_attempts`` (counting both worker-reported failures
    and expired leases) is quarantined into ``poison/`` instead of
    wedging the campaign forever.
    """

    lease_seconds: float = 30.0
    max_attempts: int = 3
    backoff_base: float = 0.5
    backoff_cap: float = 30.0


class Supervisor:
    """Applies a :class:`RetryPolicy` to a queue from the outside."""

    def __init__(
        self,
        queue: ShardQueue,
        *,
        policy: RetryPolicy | None = None,
        telemetry: Telemetry | None = None,
        rebalancer: Rebalancer | None = None,
    ) -> None:
        self.queue = queue
        self.policy = policy or RetryPolicy()
        self.telemetry = resolve_telemetry(telemetry)
        self.rebalancer = rebalancer

    def tick(self, *, now: float | None = None) -> list[tuple[str, str]]:
        """Release expired leases once; returns ``[(shard_id, outcome)]``.

        When an elastic :class:`Rebalancer` is attached, each tick also
        runs one rebalance pass — observing fleet pace from the lease
        files and splitting oversized pending shards for stragglers.
        """
        released = self.queue.release_expired(
            lease_seconds=self.policy.lease_seconds,
            max_attempts=self.policy.max_attempts,
            backoff_base=self.policy.backoff_base,
            backoff_cap=self.policy.backoff_cap,
            now=now,
        )
        if self.telemetry.enabled:
            for shard_id, outcome in released:
                self.telemetry.emit(
                    "shard_requeue" if outcome == "requeued" else "shard_poison",
                    shard=shard_id,
                    reason="lease expired",
                )
        if self.rebalancer is not None:
            self.rebalancer.tick(now=now)
        return released

    def wait(
        self,
        *,
        poll_seconds: float = 0.1,
        timeout: float | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> bool:
        """Tick until the campaign completes; ``False`` on timeout/stop."""
        start = time.monotonic()
        while True:
            self.tick()
            if self.queue.is_complete():
                return True
            status = self.queue.status()
            if not status.pending and not status.leased:
                return False  # only poison left — nothing will complete it
            if timeout is not None and time.monotonic() - start > timeout:
                return False
            if should_stop is not None and should_stop():
                return False
            time.sleep(poll_seconds)


def _raise_on_poison(queue: ShardQueue) -> None:
    poisoned = queue.poisoned()
    if poisoned:
        details = "; ".join(
            f"{spec.shard_id} after {spec.attempts} attempts "
            f"(last: {spec.history[-1] if spec.history else 'unknown'})"
            for spec in poisoned[:3]
        )
        raise DistError(
            f"{len(poisoned)} shard(s) were poisoned and the campaign "
            f"cannot complete: {details} — inspect "
            f"{queue.poison_dir} and resubmit after fixing the cause"
        )


def _drain_with_local_fleet(
    queue: ShardQueue,
    context: ExhaustiveContext | SampledContext,
    *,
    workers: int,
    policy: RetryPolicy,
    telemetry: Telemetry | None,
    rebalancer: Rebalancer | None = None,
) -> None:
    """Fork *workers* local processes and drain the queue to completion.

    Falls back to draining inline when fork is unavailable or a single
    worker was requested.  The parent acts as supervisor while children
    work; if every child dies with work still pending (all claimed
    shards eventually expire back to pending), the parent drains the
    remainder inline rather than deadlocking.
    """

    def make_worker(worker_id: str) -> ShardWorker:
        return ShardWorker(
            queue,
            context,
            worker_id=worker_id,
            lease_seconds=policy.lease_seconds,
            max_attempts=policy.max_attempts,
            backoff_base=policy.backoff_base,
            backoff_cap=policy.backoff_cap,
            telemetry=telemetry,
        )

    workers = max(1, int(workers))
    ctx = None
    if workers > 1:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            ctx = None  # platform without fork: drain inline
    if ctx is None:
        make_worker(f"local:{os.getpid()}").run()
        return

    procs = [
        ctx.Process(
            target=lambda wid: make_worker(wid).run(),
            args=(f"local:{os.getpid()}:w{i}",),
            daemon=True,
        )
        for i in range(workers)
    ]
    for proc in procs:
        proc.start()
    supervisor = Supervisor(
        queue, policy=policy, telemetry=telemetry, rebalancer=rebalancer
    )
    try:
        while True:
            supervisor.tick()
            if queue.is_complete():
                break
            status = queue.status()
            if not status.pending and not status.leased:
                break  # only poison left
            if not any(proc.is_alive() for proc in procs):
                # The whole fleet died (kill -9, OOM, ...): release
                # whatever they still lease and finish the job here.
                supervisor.tick(now=time.time() + policy.lease_seconds + 1)
                make_worker(f"local:{os.getpid()}:fallback").run()
                break
            time.sleep(0.05)
    finally:
        for proc in procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)


def run_sharded_exhaustive(
    engine: FaultInjectionEngine,
    space: FaultSpace,
    root: str | os.PathLike,
    *,
    shards: int = 4,
    workers: int | None = None,
    policy: RetryPolicy | None = None,
    telemetry: Telemetry | None = None,
    runtime: dict | None = None,
    rebalancer: Rebalancer | None = None,
) -> OutcomeTable:
    """Submit, execute and merge a sharded exhaustive campaign locally.

    The merged table is bit-identical to a serial
    :meth:`OutcomeTable.from_exhaustive` run.  *root* is the queue
    directory; resubmitting into an existing root with the same
    configuration resumes it (done shards are kept), so a killed
    campaign picks up where it stopped.
    """
    policy = policy or RetryPolicy()
    workers = resolve_workers(workers)
    queue = ShardQueue(root)
    config, specs = make_exhaustive_shards(engine, space, shards=shards)
    extras = {"golden_accuracy": engine.golden_accuracy}
    extras.update(plan_attestation_runtime(engine))
    if runtime:
        extras.update(runtime)
    queue.submit(specs, config=config, runtime=extras)
    tele = resolve_telemetry(telemetry)
    if tele.enabled:
        tele.emit(
            "campaign_start",
            kind="exhaustive",
            sharded=True,
            shards=len(specs),
            workers=workers,
            total=space.total_population,
            cells_total=len(space.layers) * space.bits,
            fmt=space.fmt.name,
        )
    start = time.monotonic()
    _drain_with_local_fleet(
        queue,
        ExhaustiveContext(engine, space),
        workers=workers,
        policy=policy,
        telemetry=telemetry,
        rebalancer=rebalancer,
    )
    _raise_on_poison(queue)
    table = merge_exhaustive(queue, telemetry=telemetry)
    if tele.enabled:
        tele.emit(
            "campaign_end",
            elapsed_seconds=time.monotonic() - start,
            faults=space.total_population,
            shards=len(specs),
        )
    return table


def run_sharded_campaign(
    oracle: Any,
    space: FaultSpace,
    plan: CampaignPlan,
    root: str | os.PathLike,
    *,
    seed: int = 0,
    shards: int = 4,
    workers: int | None = None,
    policy: RetryPolicy | None = None,
    telemetry: Telemetry | None = None,
    golden_sha256: str | None = None,
    runtime: dict | None = None,
    rebalancer: Rebalancer | None = None,
) -> CampaignResult:
    """Submit, execute and merge a sharded sampled campaign locally.

    The merged result equals a serial ``CampaignRunner.run(plan,
    seed=seed)`` exactly (per-stratum seed substreams make every
    stratum's draws independent of shard and worker assignment).
    """
    policy = policy or RetryPolicy()
    workers = resolve_workers(workers)
    queue = ShardQueue(root)
    config, specs = make_sampled_shards(
        plan, space, seed=seed, shards=shards, golden_sha256=golden_sha256
    )
    queue.submit(specs, config=config, runtime=dict(runtime or {}))
    tele = resolve_telemetry(telemetry)
    if tele.enabled:
        tele.emit(
            "campaign_start",
            kind="sampled",
            sharded=True,
            method=plan.method,
            seed=seed,
            shards=len(specs),
            workers=workers,
            total=plan.total_injections,
        )
    start = time.monotonic()
    _drain_with_local_fleet(
        queue,
        SampledContext(oracle, space, plan),
        workers=workers,
        policy=policy,
        telemetry=telemetry,
        rebalancer=rebalancer,
    )
    _raise_on_poison(queue)
    result = merge_sampled(queue, space, telemetry=telemetry)
    if tele.enabled:
        tele.emit(
            "campaign_end",
            elapsed_seconds=time.monotonic() - start,
            injections=result.total_injections,
            criticals=result.total_criticals,
            masked=result.total_masked,
        )
    return result
