"""Sharded, fault-tolerant campaign orchestration with deterministic merge.

Campaign volume is the reproduction's headline cost (the paper's
exhaustive runs took 37–54 GPU-days at full scale); this package breaks
any campaign — exhaustive (layer, bit) cells or sampled plan strata —
into self-describing shards drained through a file-backed work queue:

- :mod:`repro.dist.spec` — stable shard identities derived from the
  engine fingerprint / plan hash, plus the cell/stratum partitioning;
- :mod:`repro.dist.queue` — the ``pending/ → leased/ → done/``
  directory queue (atomic renames + verified-store writes), shareable
  by workers on any host that sees the filesystem;
- :mod:`repro.dist.lease` — time-bounded shard ownership renewed by
  telemetry ``worker_heartbeat`` events; dead workers' shards expire
  and are re-dispatched;
- :mod:`repro.dist.worker` — the claim/execute/complete loop with
  capped-exponential-backoff retries and a poison list for shards that
  fail repeatedly;
- :mod:`repro.dist.merge` — deterministic reassembly into an
  :class:`~repro.faults.OutcomeTable` / :class:`~repro.sfi.CampaignResult`
  bit-identical to a serial run, refusing mismatched config fingerprints;
- :mod:`repro.dist.supervisor` — retry policy, lease expiry ticks and
  the single-host submit→fleet→merge convenience wrappers;
- :mod:`repro.dist.rebalance` — the elastic pass: observes per-worker
  pace from lease files and splits oversized *pending* shards for
  stragglers along the stable shard-id rules, so the merge stays
  bit-identical while slow workers stop gating the wall clock.

The ``repro-dist`` CLI (``submit`` / ``work`` / ``status`` / ``merge``)
exposes the same lifecycle across processes and hosts.
"""

from repro.dist.lease import Lease, LeaseKeeper
from repro.dist.merge import (
    MergeError,
    merge_exhaustive,
    merge_sampled,
    save_merged_table,
)
from repro.dist.queue import QueueStatus, ShardQueue, expand_splits
from repro.dist.rebalance import RebalanceReport, Rebalancer, WorkerRate
from repro.dist.spec import (
    DistError,
    ShardSpec,
    config_hash,
    exhaustive_config,
    make_exhaustive_shards,
    make_sampled_shards,
    plan_hash,
    sampled_config,
    split_shard,
)
from repro.dist.supervisor import (
    RetryPolicy,
    Supervisor,
    run_sharded_campaign,
    run_sharded_exhaustive,
)
from repro.dist.worker import (
    ExhaustiveContext,
    SampledContext,
    ShardWorker,
    plan_attestation_runtime,
    resolve_heartbeat_interval,
    verify_context_config,
)

__all__ = [
    "DistError",
    "ExhaustiveContext",
    "Lease",
    "LeaseKeeper",
    "MergeError",
    "QueueStatus",
    "RebalanceReport",
    "Rebalancer",
    "RetryPolicy",
    "SampledContext",
    "ShardQueue",
    "ShardSpec",
    "ShardWorker",
    "Supervisor",
    "WorkerRate",
    "config_hash",
    "exhaustive_config",
    "expand_splits",
    "make_exhaustive_shards",
    "make_sampled_shards",
    "merge_exhaustive",
    "merge_sampled",
    "plan_attestation_runtime",
    "plan_hash",
    "resolve_heartbeat_interval",
    "run_sharded_campaign",
    "run_sharded_exhaustive",
    "sampled_config",
    "save_merged_table",
    "split_shard",
    "verify_context_config",
]
