"""Declared filesystem-effect protocol of the distributed queue.

Every queue method that mutates disk state declares its ordered
sequence of atomic effects here, in terms of path *roles* (``pending``,
``leased``, ``lease``, ``done``, ``poison``, ``splitting``,
``campaign``).  The static pass in :mod:`repro.check.protocol.effects`
derives the *actual* effect sequence from the AST of
:mod:`repro.dist.queue` / :mod:`repro.dist.lease` /
:mod:`repro.dist.rebalance` and checks it against this spec — so a
refactor that reorders a rename past a commit point, drops a cleanup
unlink, or sneaks in a non-atomic write fails CI with a named Q3xx
rule instead of a flaky chaos test.

The declaration order *is* the crash-safety argument:

- ``complete`` writes the ``done/`` result **before** retiring the
  leased/pending spec copies — a crash in between duplicates work but
  never loses the shard.
- ``commit_split`` rewrites ``campaign.json`` (the commit point)
  **before** enqueueing children or dropping the ``.splitting`` parent
  — a crash in between is healed by ``recover_splits`` re-deriving the
  children from the durable record.
- ``fail`` requeues/poisons the spec copy **before** unlinking the
  leased one — a crash in between leaves a duplicate that ``claim``'s
  done-set check later drops.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DeclaredEffect:
    """One slot in a method's declared effect sequence.

    ``kind`` is ``write`` / ``append`` / ``unlink`` / ``rename``; roles
    name the path(s) the effect may touch (rename roles are
    ``"src->dst"`` strings).  ``repeat`` slots absorb any number of
    consecutive matching effects (loops, multiple call sites);
    ``optional`` slots may be skipped (conditional cleanup).
    """

    kind: str
    roles: frozenset[str]
    repeat: bool = False
    optional: bool = False


def _e(
    kind: str, *roles: str, repeat: bool = False, optional: bool = False
) -> DeclaredEffect:
    return DeclaredEffect(
        kind=kind, roles=frozenset(roles), repeat=repeat, optional=optional
    )


#: ``module -> qualified function name -> ordered declared effects``.
#: A module entry whose mapping is empty (``repro.dist.rebalance``)
#: declares that *no* function in it may touch the filesystem directly:
#: the rebalancer acts exclusively through the ``ShardQueue`` API.
PROTOCOL_SPEC: dict[str, dict[str, tuple[DeclaredEffect, ...]]] = {
    "repro.dist.queue": {
        "ShardQueue.submit": (
            _e("write", "campaign"),
            _e("write", "pending", repeat=True, optional=True),
        ),
        "ShardQueue.begin_split": (
            _e("rename", "pending->splitting"),
            # The torn-spec bail-out inlines abort_split.
            _e("rename", "splitting->pending", optional=True),
        ),
        "ShardQueue.abort_split": (
            _e("rename", "splitting->pending"),
        ),
        "ShardQueue.commit_split": (
            # campaign.json rewrite is the commit point: nothing below
            # may move above it.
            _e("write", "campaign"),
            _e("write", "pending", repeat=True, optional=True),
            _e("unlink", "splitting"),
        ),
        "ShardQueue._enqueue_children": (
            _e("write", "pending", repeat=True, optional=True),
        ),
        "ShardQueue.recover_splits": (
            _e("rename", "splitting->pending", repeat=True, optional=True),
            _e("write", "pending", repeat=True, optional=True),
            _e("unlink", "splitting", repeat=True, optional=True),
        ),
        "ShardQueue.claim": (
            # Dropping a redundant requeued copy of a done shard.
            _e("unlink", "pending", repeat=True, optional=True),
            _e("rename", "pending->leased"),
            _e("write", "lease"),
        ),
        "ShardQueue.complete": (
            # Result durability first; spec retirement after.
            _e("write", "done"),
            _e("unlink", "leased", "pending", repeat=True),
            _e("unlink", "lease", optional=True),
        ),
        "ShardQueue.fail": (
            # Rewrite the leased copy with the bumped attempt count,
            # then requeue/poison it with one atomic rename — a rename
            # moves exactly one inode, so it can never clobber a
            # concurrent claim of an already-requeued copy (the lost
            # shard race repro-check protocol found in the old
            # write-pending-then-unlink-leased ordering).
            _e("write", "leased"),
            _e("rename", "leased->pending", "leased->poison"),
            _e("unlink", "lease", optional=True),
        ),
        "ShardQueue.release_expired": (
            _e("write", "leased", repeat=True, optional=True),
            _e(
                "rename",
                "leased->pending",
                "leased->poison",
                repeat=True,
                optional=True,
            ),
            _e("unlink", "lease", repeat=True, optional=True),
        ),
    },
    "repro.dist.lease": {
        "Lease.acquire": (_e("write", "lease"),),
        "Lease._write": (_e("write", "lease"),),
        "Lease.renew": (_e("write", "lease"),),
        "Lease.maybe_renew": (_e("write", "lease", optional=True),),
        "Lease.release": (_e("unlink", "lease"),),
        "LeaseKeeper.on_event": (_e("write", "lease", optional=True),),
    },
    # The rebalancer must never touch campaign state directly — every
    # mutation goes through the ShardQueue protocol methods above.
    "repro.dist.rebalance": {},
}


@dataclass(frozen=True)
class MethodEffects:
    """Convenience view pairing a method with its declared sequence."""

    qualname: str
    effects: tuple[DeclaredEffect, ...] = field(default_factory=tuple)
