"""Elastic shard rebalancing: split oversized pending work for stragglers.

Leases already tell the fleet *who* owns *what*; since they also record
when they were acquired and how many heartbeats (completed units) have
landed, any observer can derive per-worker throughput without touching
the workers.  The :class:`Rebalancer` turns that into a scheduling pass:
when the observed fleet pace says a pending shard would take longer than
the target wall time — because a straggler drags the pace down, or the
shard was simply cut too coarse — the shard is re-partitioned into
smaller children so idle workers can steal a share.

Correctness is inherited, not re-proved: children are produced by
:func:`repro.dist.spec.split_shard` (pure, stable ids, round-robin unit
order) and only *pending* shards are touched (a rename races a worker's
claim atomically, and the claim wins by design).  The merged result is
therefore bit-identical to the unsplit campaign — rebalancing changes
who computes which cell, never what is computed.
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass, field

from repro.dist.lease import read_lease
from repro.dist.queue import ShardQueue
from repro.dist.spec import ShardSpec, split_shard
from repro.telemetry import Telemetry, resolve_telemetry

#: Ignore a lease's implied rate until it has been observed this long —
#: a worker one heartbeat into its shard is not yet a rate sample.
MIN_OBSERVATION_SECONDS = 0.5


@dataclass(frozen=True)
class WorkerRate:
    """One leased shard's observed progress."""

    worker: str
    shard_id: str
    units_done: int
    elapsed: float

    @property
    def rate(self) -> float:
        """Units per second (0.0 while nothing has completed)."""
        if self.elapsed <= 0:
            return 0.0
        return self.units_done / self.elapsed


@dataclass
class RebalanceReport:
    """What one rebalance pass observed and did."""

    rates: list[WorkerRate] = field(default_factory=list)
    stragglers: list[str] = field(default_factory=list)  # worker names
    seconds_per_unit: float | None = None
    recovered: list[str] = field(default_factory=list)  # crash-repaired ids
    splits: list[tuple[str, list[str]]] = field(default_factory=list)

    @property
    def split_count(self) -> int:
        return len(self.splits)


class Rebalancer:
    """Observes fleet throughput and splits oversized pending shards.

    Parameters
    ----------
    queue:
        The campaign's shard queue.  The rebalancer must be the only
        writer of ``campaign.json`` after submission (the supervisor
        runs one rebalance pass per tick; do not run two supervisors
        against one queue).
    target_shard_seconds:
        Split any pending shard predicted to take longer than this at
        the observed pace.
    straggler_ratio:
        A worker is a straggler when its unit rate falls below this
        fraction of the fleet's median rate.  While stragglers are
        present the *slowest* observed pace prices pending shards
        (pessimistic: the straggler may claim them); otherwise the
        median does.
    min_units:
        Never produce children smaller than this many units — below
        that, per-shard overhead (claim, attestation, merge) dominates.
    seconds_per_unit:
        Prior pace used before any lease has been observed (e.g. from a
        fitted :class:`~repro.telemetry.costmodel.CostModel`).  Without
        observations or a prior the pass never splits.
    """

    def __init__(
        self,
        queue: ShardQueue,
        *,
        target_shard_seconds: float = 30.0,
        straggler_ratio: float = 0.5,
        min_units: int = 2,
        seconds_per_unit: float | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if target_shard_seconds <= 0:
            raise ValueError(
                f"target_shard_seconds must be positive, "
                f"got {target_shard_seconds}"
            )
        self.queue = queue
        self.target_shard_seconds = target_shard_seconds
        self.straggler_ratio = straggler_ratio
        self.min_units = max(1, int(min_units))
        self.seconds_per_unit = seconds_per_unit
        self.telemetry = resolve_telemetry(telemetry)

    # -- observation -------------------------------------------------------

    def observe(self, *, now: float | None = None) -> list[WorkerRate]:
        """Per-worker progress rates read from the live lease files."""
        now = time.time() if now is None else now
        rates = []
        if not self.queue.leased_dir.is_dir():
            return rates
        for path in sorted(self.queue.leased_dir.glob("*.lease.json")):
            record = read_lease(path)
            if record is None:
                continue
            acquired = record.get("acquired")
            if not isinstance(acquired, (int, float)) or acquired <= 0:
                continue  # pre-upgrade lease without an acquire stamp
            elapsed = now - float(acquired)
            if elapsed < MIN_OBSERVATION_SECONDS:
                continue
            rates.append(
                WorkerRate(
                    worker=str(record.get("worker", "unknown")),
                    shard_id=str(record.get("shard_id", path.stem)),
                    units_done=int(record.get("heartbeats", 0)),
                    elapsed=elapsed,
                )
            )
        return rates

    def _pace(
        self, rates: list[WorkerRate]
    ) -> tuple[float | None, list[str]]:
        """(seconds per unit, straggler workers) from observed rates.

        Uses only leases that have completed at least one unit (a rate
        of zero is indistinguishable from "just started").  With
        stragglers present the slowest pace wins — a pending shard must
        stay small enough for its *worst* potential claimant.
        """
        observed = [r for r in rates if r.units_done > 0]
        if not observed:
            return self.seconds_per_unit, []
        median_rate = statistics.median(r.rate for r in observed)
        stragglers = [
            r.worker
            for r in observed
            if r.rate < self.straggler_ratio * median_rate
        ]
        pace_rate = (
            min(r.rate for r in observed) if stragglers else median_rate
        )
        if pace_rate <= 0:
            return self.seconds_per_unit, stragglers
        return 1.0 / pace_rate, stragglers

    # -- the pass ----------------------------------------------------------

    def tick(self, *, now: float | None = None) -> RebalanceReport:
        """One rebalance pass: recover, observe, split.  Idempotent."""
        now = time.time() if now is None else now
        report = RebalanceReport()
        report.recovered = self.queue.recover_splits()
        report.rates = self.observe(now=now)
        seconds_per_unit, report.stragglers = self._pace(report.rates)
        report.seconds_per_unit = seconds_per_unit
        if seconds_per_unit is None or seconds_per_unit <= 0:
            return report  # nothing observed, no prior: never split blind
        if not self.queue.pending_dir.is_dir():
            return report
        for path in sorted(self.queue.pending_dir.glob("*.json")):
            spec = self.queue._read_spec(path)
            if spec is None:
                continue
            split = self._maybe_split(spec, seconds_per_unit)
            if split is not None:
                report.splits.append(split)
        return report

    def _maybe_split(
        self, spec: ShardSpec, seconds_per_unit: float
    ) -> tuple[str, list[str]] | None:
        units = len(spec.units)
        predicted = units * seconds_per_unit
        if predicted <= self.target_shard_seconds:
            return None
        max_parts = units // self.min_units
        if max_parts < 2:
            return None  # already as fine as the floor allows
        parts = math.ceil(predicted / self.target_shard_seconds)
        parts = int(min(max(2, parts), max_parts))
        claimed = self.queue.begin_split(spec.shard_id)
        if claimed is None:
            return None  # a worker claimed it first: it wins
        children = split_shard(claimed, parts)
        self.queue.commit_split(claimed, children)
        child_ids = [child.shard_id for child in children]
        if self.telemetry.enabled:
            self.telemetry.emit(
                "shard_split",
                shard=spec.shard_id,
                children=child_ids,
                parts=len(children),
                units=units,
                predicted_seconds=predicted,
                seconds_per_unit=seconds_per_unit,
            )
        return spec.shard_id, child_ids
