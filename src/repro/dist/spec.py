"""Shard identity: stable ids, config fingerprints and partitioning.

A shard is a self-describing slice of a campaign: which work units it
covers (exhaustive (layer, bit) cells or sampled plan items), which
campaign configuration it belongs to, and — for sampled shards — the
base seed whose :class:`numpy.random.SeedSequence` substreams drive each
stratum.  Everything about a shard is a pure function of the campaign
configuration, so two submitters on different hosts produce byte-for-byte
identical shard specs, and a worker can verify it is executing against
the same engine the campaign was planned for.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.faults.engine import FaultInjectionEngine
from repro.faults.space import FaultSpace
from repro.faults.table import campaign_config
from repro.sfi.planners import CampaignPlan

EXHAUSTIVE = "exhaustive"
SAMPLED = "sampled"


class DistError(RuntimeError):
    """A distributed-campaign invariant was violated."""


def config_hash(config: dict) -> str:
    """Stable hex fingerprint of a campaign configuration dict."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def plan_hash(plan: CampaignPlan, *, seed: int) -> str:
    """Stable hex fingerprint of a campaign plan (plus its base seed).

    Covers every planned stratum (identity, population, sample size,
    assumed prior) and the statistical parameters, so two plans that
    would draw different samples never share a hash.
    """
    payload = {
        "method": plan.method,
        "granularity": plan.granularity.value,
        "error_margin": plan.error_margin,
        "confidence": plan.confidence,
        "t": plan.t,
        "seed": seed,
        "items": [
            [
                list(item.subpopulation.key),
                item.subpopulation.population,
                item.sample_size,
                item.p_assumed,
            ]
            for item in plan.items
        ],
    }
    return config_hash(payload)


def exhaustive_config(engine: FaultInjectionEngine, space: FaultSpace) -> dict:
    """Identity of an exhaustive campaign (same as the checkpoint config)."""
    config = dict(campaign_config(engine, space))
    config["kind"] = EXHAUSTIVE
    config["bits"] = space.bits
    return config


def sampled_config(
    plan: CampaignPlan,
    space: FaultSpace,
    *,
    seed: int,
    golden_sha256: str | None = None,
) -> dict:
    """Identity of a sampled campaign: plan hash + space + base seed."""
    return {
        "kind": SAMPLED,
        "method": plan.method,
        "granularity": plan.granularity.value,
        "t": plan.t,
        "seed": seed,
        "plan_sha256": plan_hash(plan, seed=seed),
        "fmt": space.fmt.name,
        "bits": space.bits,
        "fault_models": [m.value for m in space.fault_models],
        "layer_sizes": [layer.size for layer in space.layers],
        "golden_sha256": golden_sha256,
    }


@dataclass(frozen=True)
class ShardSpec:
    """One self-describing slice of a campaign.

    Attributes
    ----------
    shard_id:
        Stable identity, derived from the campaign's config fingerprint,
        the shard's position and its work units — identical across
        submitters and across resubmissions of the same campaign.
    kind:
        ``"exhaustive"`` (units are ``(layer, bit)`` cells) or
        ``"sampled"`` (units are plan-item indices).
    units:
        The work units, in deterministic order.
    seed:
        Base seed of the sampled campaign (``None`` for exhaustive);
        stratum *i* draws from ``SeedSequence(seed, spawn_key=(i,))``
        regardless of which shard or worker executes it.
    attempts:
        Times this shard has been dispatched (leased) so far.
    not_before:
        Wall-clock time before which the shard must not be claimed
        (exponential-backoff retry after a failure).
    history:
        Human-readable failure records from earlier attempts.
    """

    shard_id: str
    kind: str
    index: int
    total: int
    config_hash: str
    units: tuple
    seed: int | None = None
    attempts: int = 0
    not_before: float = 0.0
    history: tuple[str, ...] = field(default=())

    def with_failure(
        self, error: str, *, not_before: float
    ) -> "ShardSpec":
        """A copy recording one more failed attempt."""
        return replace(
            self,
            attempts=self.attempts + 1,
            not_before=not_before,
            history=self.history + (error,),
        )

    # -- serialisation ---------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "shard_id": self.shard_id,
                "kind": self.kind,
                "index": self.index,
                "total": self.total,
                "config_hash": self.config_hash,
                "units": [list(u) if isinstance(u, tuple) else u for u in self.units],
                "seed": self.seed,
                "attempts": self.attempts,
                "not_before": self.not_before,
                "history": list(self.history),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ShardSpec":
        record = json.loads(text)
        units = tuple(
            tuple(u) if isinstance(u, list) else u for u in record["units"]
        )
        return cls(
            shard_id=record["shard_id"],
            kind=record["kind"],
            index=record["index"],
            total=record["total"],
            config_hash=record["config_hash"],
            units=units,
            seed=record.get("seed"),
            attempts=record.get("attempts", 0),
            not_before=record.get("not_before", 0.0),
            history=tuple(record.get("history", ())),
        )


def _shard_id(
    cfg_hash: str,
    kind: str,
    index: int,
    total: int,
    units: Sequence[object],
    seed: int | None,
) -> str:
    payload = json.dumps(
        [cfg_hash, kind, index, total, [list(u) if isinstance(u, tuple) else u for u in units], seed],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _partition(units: list, shards: int) -> list[list]:
    """Round-robin split: shard *i* takes ``units[i::shards]``.

    Round-robin (rather than contiguous ranges) spreads a model's big
    early layers across shards, so shard wall times stay comparable.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return [units[i::shards] for i in range(shards)]


def split_shard(spec: ShardSpec, parts: int) -> list[ShardSpec]:
    """Re-partition one shard's pending units into *parts* child shards.

    Pure and deterministic: the same (spec, parts) always yields the
    same children, with ids derived through the standard
    :func:`_shard_id` rules — so a rebalancer on any host splits a
    straggling campaign identically, and a merge over split shards stays
    bit-identical to the unsplit run (children cover exactly the
    parent's units, in the parent's round-robin order).

    Children keep the parent's ``index``/``total`` (their position in
    the *original* partition) and append a sub-index; identity comes
    from the unit tuple, which differs per child.  Attempt counts and
    failure history carry over so a poison-bound shard cannot dodge its
    quarantine by being split.
    """
    if parts < 2:
        raise ValueError(f"split needs >= 2 parts, got {parts}")
    if parts > len(spec.units):
        parts = len(spec.units)
    if parts < 2:
        raise DistError(
            f"shard {spec.shard_id} has {len(spec.units)} unit(s); "
            "nothing to split"
        )
    children = []
    for sub, unit_part in enumerate(_partition(list(spec.units), parts)):
        units = tuple(unit_part)
        children.append(
            replace(
                spec,
                shard_id=_shard_id(
                    spec.config_hash,
                    spec.kind,
                    spec.index,
                    spec.total,
                    units,
                    spec.seed,
                ),
                units=units,
                history=spec.history
                + (f"split {sub + 1}/{parts} of {spec.shard_id}",),
            )
        )
    return children


def make_exhaustive_shards(
    engine: FaultInjectionEngine, space: FaultSpace, *, shards: int
) -> tuple[dict, list[ShardSpec]]:
    """Split an exhaustive campaign's (layer, bit) cells into shards.

    Returns ``(config, specs)``; empty shards (more shards than cells)
    are dropped.
    """
    config = exhaustive_config(engine, space)
    cfg_hash = config_hash(config)
    cells = [
        (layer_idx, bit)
        for layer_idx in range(len(space.layers))
        for bit in range(space.bits)
    ]
    specs = []
    parts = _partition(cells, shards)
    for index, part in enumerate(parts):
        if not part:
            continue
        units = tuple(part)
        specs.append(
            ShardSpec(
                shard_id=_shard_id(
                    cfg_hash, EXHAUSTIVE, index, len(parts), units, None
                ),
                kind=EXHAUSTIVE,
                index=index,
                total=len(parts),
                config_hash=cfg_hash,
                units=units,
            )
        )
    return config, specs


def make_sampled_shards(
    plan: CampaignPlan,
    space: FaultSpace,
    *,
    seed: int,
    shards: int,
    golden_sha256: str | None = None,
) -> tuple[dict, list[ShardSpec]]:
    """Split a sampled campaign's plan items into shards.

    Items with a zero sample size are distributed too — their assumed
    priors must land in the merged result exactly as in a serial run.
    """
    config = sampled_config(
        plan, space, seed=seed, golden_sha256=golden_sha256
    )
    cfg_hash = config_hash(config)
    items = list(range(len(plan.items)))
    specs = []
    parts = _partition(items, shards)
    for index, part in enumerate(parts):
        if not part:
            continue
        units = tuple(part)
        specs.append(
            ShardSpec(
                shard_id=_shard_id(
                    cfg_hash, SAMPLED, index, len(parts), units, seed
                ),
                kind=SAMPLED,
                index=index,
                total=len(parts),
                config_hash=cfg_hash,
                units=units,
                seed=seed,
            )
        )
    return config, specs
