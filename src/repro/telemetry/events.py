"""Typed telemetry events.

Every record in a campaign journal is one :class:`Event`: a type drawn
from a small closed vocabulary, two timestamps, the run id tying the
record to one campaign, the emitting process id, and free-form fields.

Two timestamps because they answer different questions:

- ``t`` is ``time.monotonic()`` — durations and ordering.  On Linux this
  is ``CLOCK_MONOTONIC``, which is system-wide, so spans measured in
  fork-pool workers are comparable with the parent's.
- ``wall`` is ``time.time()`` — "when did this happen" for humans
  correlating a journal with logs from other systems.
"""

from __future__ import annotations

import json
import os
import secrets
import time
from dataclasses import dataclass, field

#: The event vocabulary.  Emitting an unknown type raises immediately —
#: a journal full of misspelled types is worse than no journal.
EVENT_TYPES = frozenset(
    {
        "campaign_start",  # an exhaustive or sampled campaign begins
        "campaign_end",  # ... and finishes (elapsed, totals)
        "cell_start",  # one (layer, bit) cell begins classification
        "cell_done",  # ... and finishes (seconds, faults, inferences)
        "checkpoint_write",  # one cell persisted to the checkpoint dir
        "checkpoint_resume",  # a resumed campaign reused persisted cells
        "worker_heartbeat",  # a pool worker is alive (pid, cells done)
        "progress",  # (done, total) faults classified so far
        "span",  # a profiled code section (name, seconds)
        "epoch_done",  # one training epoch finished
        "artifact_cache_hit",  # an exhaustive table was served from cache
        "shard_claim",  # a distributed worker leased a shard
        "shard_done",  # ... and completed it (seconds, units)
        "shard_fail",  # ... or failed it (error, requeued/poisoned)
        "shard_requeue",  # an expired/failed shard went back to pending
        "shard_poison",  # a shard exhausted its attempts and was quarantined
        "shard_split",  # a pending shard was re-partitioned for stragglers
        "merge_done",  # shard results reassembled into one campaign result
        "campaign_predicted",  # cost-model prediction issued before a run
        "worker_idle",  # a worker found nothing claimable (queue drained)
    }
)


def new_run_id() -> str:
    """A short random id tying one campaign's events together."""
    return secrets.token_hex(6)


@dataclass(frozen=True)
class Event:
    """One journal record."""

    type: str
    run_id: str
    t: float  # monotonic seconds (durations / ordering)
    wall: float  # unix epoch seconds (human correlation)
    pid: int
    fields: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.type not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {self.type!r}; "
                f"expected one of {sorted(EVENT_TYPES)}"
            )

    @classmethod
    def now(cls, type: str, run_id: str, **fields) -> "Event":
        """An event stamped with the current clocks and process id."""
        return cls(
            type=type,
            run_id=run_id,
            t=time.monotonic(),
            wall=time.time(),
            pid=os.getpid(),
            fields=fields,
        )

    def to_json(self) -> str:
        """One JSONL line (no newline)."""
        record = {
            "type": self.type,
            "run_id": self.run_id,
            "t": self.t,
            "wall": self.wall,
            "pid": self.pid,
        }
        record.update(self.fields)
        return json.dumps(record, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "Event":
        """Parse one JSONL line (raises on malformed input)."""
        record = json.loads(line)
        return cls(
            type=record.pop("type"),
            run_id=record.pop("run_id"),
            t=record.pop("t"),
            wall=record.pop("wall"),
            pid=record.pop("pid"),
            fields=record,
        )
