"""The telemetry sink handed through the campaign stack.

Every instrumented call site takes ``telemetry: Telemetry | None = None``
and resolves ``None`` to the shared :data:`NULL_TELEMETRY`.  Call sites
gate their instrumentation on ``telemetry.enabled`` — a plain attribute
read — so the disabled path adds one branch per *cell or batch*, never
per fault, and allocates nothing.

An enabled :class:`Telemetry` bundles the two backends:

- a :class:`~repro.telemetry.journal.Journal` (durable JSONL events), and
- a :class:`~repro.telemetry.metrics.MetricsRegistry` (in-process
  aggregates, snapshot to JSON at the end of a run).

Either may be omitted: metrics-only telemetry skips journal writes,
journal-only telemetry still aggregates (into its private registry) so
spans always have somewhere to land.
"""

from __future__ import annotations

import os

from repro.telemetry.events import Event, new_run_id
from repro.telemetry.journal import Journal
from repro.telemetry.metrics import Counter, Gauge, MetricsRegistry, Timer
from repro.telemetry.spans import NULL_SPAN, Span, _NullSpan


class Telemetry:
    """An enabled sink: events to the journal, aggregates to the registry."""

    enabled = True

    def __init__(
        self,
        *,
        journal: Journal | None = None,
        metrics: MetricsRegistry | None = None,
        run_id: str | None = None,
        on_event=None,
    ) -> None:
        self.journal = journal
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.run_id = run_id or (journal.run_id if journal else new_run_id())
        #: Optional ``callable(Event)`` invoked on every emitted event in
        #: the emitting process — live progress displays hook in here.
        self.on_event = on_event

    @classmethod
    def to_file(
        cls, trace_path: str | os.PathLike, *, run_id: str | None = None
    ) -> "Telemetry":
        """Telemetry journaling to *trace_path* (the CLI ``--trace`` form)."""
        return cls(journal=Journal(trace_path, run_id=run_id))

    # -- events ----------------------------------------------------------

    def emit(self, type: str, **fields) -> Event:
        """Record one event: journal it (if any) and notify ``on_event``."""
        event = Event.now(type, self.run_id, **fields)
        if self.journal is not None:
            self.journal.append(event)
        if self.on_event is not None:
            self.on_event(event)
        return event

    # -- spans -----------------------------------------------------------

    def span(self, name: str, *, emit: bool = False, **fields) -> Span:
        """Time a section; ``emit=True`` also journals it on exit."""
        return Span(
            name, self.metrics, self.journal, emit=emit, fields=fields
        )

    # -- metrics ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def timer(self, name: str) -> Timer:
        return self.metrics.timer(name)

    def save_metrics(self, path: str | os.PathLike) -> None:
        self.metrics.save(path)


class NullTelemetry(Telemetry):
    """The zero-cost default: every operation is a no-op.

    ``enabled`` is ``False`` so hot paths can skip instrumentation with
    one attribute read; even unguarded calls cost only a constant-return
    method — no allocation, no I/O, no timestamps.
    """

    enabled = False

    def __init__(self) -> None:  # no backends to build
        self.journal = None
        self.metrics = MetricsRegistry()
        self.run_id = "null"
        self.on_event = None

    def emit(self, type: str, **fields) -> None:
        return None

    def span(self, name: str, *, emit: bool = False, **fields) -> _NullSpan:
        return NULL_SPAN

    def save_metrics(self, path: str | os.PathLike) -> None:
        return None


#: Shared no-op sink; ``resolve_telemetry(None)`` returns this.
NULL_TELEMETRY = NullTelemetry()


def resolve_telemetry(telemetry: Telemetry | None) -> Telemetry:
    """Normalise an optional telemetry argument to a usable sink."""
    return NULL_TELEMETRY if telemetry is None else telemetry


def progress_printer(prefix: str = "  progress"):
    """An ``on_event`` hook printing ``progress`` events as they arrive.

    The telemetry-backed replacement for the deprecated
    ``progress=callback`` plumbing::

        telemetry = Telemetry(on_event=progress_printer("  exhaustive"))
    """

    def on_event(event: Event) -> None:
        if event.type == "progress":
            done, total = event.fields["done"], event.fields["total"]
            print(f"{prefix}: {done:,}/{total:,}", flush=True)

    return on_event
