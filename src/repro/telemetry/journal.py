"""Append-only JSONL event journal.

One journal file records one or more campaigns.  Appends go through
:func:`repro.store.atomic.atomic_append_line` — a single ``O_APPEND``
write per event — so fork-pool workers and the parent process can share
the same journal without interleaving records.  Readers tolerate a torn
final line (a crash mid-append) the same way the checkpoint store
tolerates a half-written chunk: the damaged record is dropped, never
propagated.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.store.atomic import atomic_append_line
from repro.telemetry.events import Event, new_run_id


class Journal:
    """Writes :class:`Event` records to a JSONL file.

    The journal holds only a path and a run id — no open file handle —
    so it survives ``fork`` trivially and pickles if it ever has to.
    """

    def __init__(
        self, path: str | os.PathLike, *, run_id: str | None = None
    ) -> None:
        self.path = Path(path)
        self.run_id = run_id or new_run_id()

    def emit(self, type: str, **fields) -> Event:
        """Append one event (stamped now, in this process) and return it."""
        event = Event.now(type, self.run_id, **fields)
        self.append(event)
        return event

    def append(self, event: Event) -> None:
        """Append an already-built event."""
        atomic_append_line(self.path, event.to_json())

    def read(self) -> list[Event]:
        """Every intact event currently in the journal."""
        return read_journal(self.path)


def read_journal(path: str | os.PathLike) -> list[Event]:
    """Parse a JSONL journal, dropping malformed (torn) lines.

    Only a crash mid-append can damage a record, and only the last line
    of the file at the moment of the crash — but after a resume the
    journal keeps growing past it, so every line is screened, not just
    the final one.
    """
    path = Path(path)
    if not path.is_file():
        return []
    events: list[Event] = []
    with open(path, encoding="utf-8", errors="replace") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(Event.from_json(line))
            except (ValueError, KeyError):
                continue  # torn append from a killed process
    return events
