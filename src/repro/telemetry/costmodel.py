"""Telemetry-driven campaign cost model.

The write side of the telemetry subsystem records what campaigns *did*
cost — per-(layer, bit) cell wall times in the journal, engine
throughput in ``BENCH_engine.json``, worker utilisation in fleet
journals.  This module closes the loop: it fits those measurements into
a :class:`CostModel` that prices a campaign *before* it runs
(``repro-plan --predict``), picks engine kind / batch size / shard
granularity for ``repro-dist submit --auto``, and — because every
prediction is journalled as a ``campaign_predicted`` event — lets
``repro-stats`` report predicted-vs-actual error so the model is
continuously validated against reality.

The model is deliberately simple and inspectable: per-layer
seconds-per-fault fitted from measured cells, a relative engine-speed
table from the throughput bench, and an observed worker-utilisation
factor.  Every prediction carries the features it was derived from.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.telemetry.stats import CampaignSummary

#: Fallback busy fraction when no fleet journal has been observed yet.
DEFAULT_UTILISATION = 0.9

#: Default shard sizing target for ``--auto`` submits: small enough that
#: a straggler holds at most this much work, large enough that claim /
#: attestation overhead stays negligible.
DEFAULT_TARGET_SHARD_SECONDS = 30.0


class CostModelError(RuntimeError):
    """The cost model cannot be fitted or applied as requested."""


@dataclass(frozen=True)
class EngineRate:
    """One engine configuration's measured throughput (from the bench)."""

    name: str  # bench row name: module / plan / plan_batched / ...
    kind: str  # create_engine kind: module / plan / plan_vectorized
    batch_size: int
    faults_per_sec: float
    backend: str = "numpy"  # kernel backend the bench ran on

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "batch_size": self.batch_size,
            "faults_per_sec": self.faults_per_sec,
            "backend": self.backend,
        }


#: Bench row name -> create_engine kind.  ``plan_batched`` is the plan
#: engine at its batched configuration, not a distinct kind.
_BENCH_KINDS = {
    "module": "module",
    "plan": "plan",
    "plan_batched": "plan",
    "plan_vectorized": "plan_vectorized",
}


def load_bench(path: str | os.PathLike) -> dict[str, EngineRate]:
    """Engine throughput rates from a ``BENCH_engine.json`` file.

    Reads the top-level (latest) ``engines`` block; the appended
    ``history`` trajectory is ignored here — the newest measurement is
    the one that prices future campaigns.  Each rate carries the kernel
    backend the bench ran on (benches written before backend selection
    existed default to the numpy reference), so relative engine speeds
    are only ever compared within one backend.
    """
    with open(path, encoding="utf-8") as stream:
        payload = json.load(stream)
    engines = payload.get("engines", {})
    backend = payload.get("backend", {}).get("name", "numpy")
    rates = {}
    for name in sorted(engines):
        row = engines[name]
        rates[name] = EngineRate(
            name=name,
            kind=_BENCH_KINDS.get(name, name),
            batch_size=int(row.get("batch_size", 1)),
            faults_per_sec=float(row["faults_per_sec"]),
            backend=backend,
        )
    return rates


def _bench_name(kind: str, batch_size: int) -> str:
    """The bench row pricing one (engine kind, batch size) choice."""
    if kind == "plan" and batch_size > 1:
        return "plan_batched"
    return kind


@dataclass(frozen=True)
class CampaignPrediction:
    """What one campaign configuration is predicted to cost."""

    kind: str  # "exhaustive" | "sampled"
    model: str | None
    engine: str
    batch_size: int
    workers: int
    shards: int | None
    fault_evals: int
    serial_seconds: float  # single worker, chosen engine
    wall_seconds: float  # across *workers* at observed utilisation
    utilisation: float
    engine_scale: float  # measured-engine seconds x scale = chosen-engine
    fitted_from: dict = field(default_factory=dict)

    @property
    def faults_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.fault_evals / self.wall_seconds

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "model": self.model,
            "engine": self.engine,
            "batch_size": self.batch_size,
            "workers": self.workers,
            "shards": self.shards,
            "fault_evals": self.fault_evals,
            "serial_seconds": round(self.serial_seconds, 4),
            "wall_seconds": round(self.wall_seconds, 4),
            "faults_per_sec": round(self.faults_per_sec, 2),
            "utilisation": round(self.utilisation, 4),
            "engine_scale": round(self.engine_scale, 4),
            "fitted_from": self.fitted_from,
        }

    def event_fields(self) -> dict:
        """Flat fields for a ``campaign_predicted`` journal event."""
        record = self.to_dict()
        record["wall_seconds"] = float(record["wall_seconds"])
        record.pop("fitted_from", None)
        return record


@dataclass
class CostModel:
    """Per-fault cost features fitted from measured telemetry.

    ``layer_seconds_per_fault`` maps layer index to the measured mean
    wall seconds per fault in that layer's cells (masked faults included
    — they are part of every cell's population and their near-zero cost
    is priced into the mean).  ``engine_rates`` carries the throughput
    bench, used only for *relative* speed between engine choices — the
    absolute faults/sec transfers poorly across hosts and models, the
    ratio transfers well.
    """

    model: str | None = None
    measured_engine: str = "module"
    measured_batch_size: int = 1
    seconds_per_fault: float = 0.0
    layer_seconds_per_fault: dict[int, float] = field(default_factory=dict)
    engine_rates: dict[str, EngineRate] = field(default_factory=dict)
    utilisation: float = DEFAULT_UTILISATION
    host_cpus: int | None = None
    cells_observed: int = 0
    faults_observed: int = 0

    # -- features --------------------------------------------------------

    def fitted_from(self) -> dict:
        return {
            "cells_observed": self.cells_observed,
            "faults_observed": self.faults_observed,
            "measured_engine": self.measured_engine,
            "measured_batch_size": self.measured_batch_size,
            "bench_engines": sorted(self.engine_rates),
        }

    def engine_scale(self, kind: str, batch_size: int) -> float:
        """Seconds multiplier from the measured engine to *kind*.

        Derived from the bench's relative rates; 1.0 when either side is
        missing from the bench (prediction falls back to measured cost),
        or when the two rates were measured on different kernel backends
        — a cross-backend ratio mixes backend speed into the engine
        ratio, so it does not transfer.
        """
        source = self.engine_rates.get(
            _bench_name(self.measured_engine, self.measured_batch_size)
        )
        target = self.engine_rates.get(_bench_name(kind, batch_size))
        if source is None or target is None:
            return 1.0
        if source.backend != target.backend:
            return 1.0
        if target.faults_per_sec <= 0:
            return 1.0
        return source.faults_per_sec / target.faults_per_sec

    def layer_rate(self, layer: int) -> float:
        """Measured seconds per fault for one layer (global fallback)."""
        return self.layer_seconds_per_fault.get(layer, self.seconds_per_fault)

    def batch_size_for(self, kind: str) -> int:
        """The batch size the bench measured *kind* at (1 if unknown)."""
        for rate in self.engine_rates.values():
            if rate.kind == kind and rate.batch_size > 1:
                return rate.batch_size
        return 1

    # -- prediction ------------------------------------------------------

    def _wall(
        self, serial_seconds: float, workers: int, shards: int | None
    ) -> float:
        # Parallelism is capped by shard granularity (W workers cannot
        # share fewer than W shards) and by the fit host's core count
        # (extra CPU-bound workers on a saturated host time-slice, they
        # do not speed up).  host_cpus is None for hand-built models.
        lanes = workers if shards is None else min(workers, max(1, shards))
        if self.host_cpus is not None:
            lanes = min(lanes, max(1, self.host_cpus))
        effective = max(1.0, lanes * self.utilisation)
        return serial_seconds / effective

    def predict_exhaustive(
        self,
        space,
        *,
        engine: str | None = None,
        batch_size: int | None = None,
        workers: int = 1,
        shards: int | None = None,
        model: str | None = None,
    ) -> CampaignPrediction:
        """Price an exhaustive campaign over *space*."""
        if self.seconds_per_fault <= 0:
            raise CostModelError(
                "cost model holds no measured cells; fit it from a "
                "journal with cell_done events first"
            )
        engine = engine or self.measured_engine
        if batch_size is None:
            batch_size = (
                self.measured_batch_size
                if engine == self.measured_engine
                else self.batch_size_for(engine)
            )
        scale = self.engine_scale(engine, batch_size)
        bits = space.bits
        serial = 0.0
        for layer in range(len(space.layers)):
            cell_faults = space.cell_population(layer)
            serial += bits * cell_faults * self.layer_rate(layer)
        serial *= scale
        return CampaignPrediction(
            kind="exhaustive",
            model=model or self.model,
            engine=engine,
            batch_size=int(batch_size),
            workers=int(workers),
            shards=shards,
            fault_evals=int(space.total_population),
            serial_seconds=serial,
            wall_seconds=self._wall(serial, workers, shards),
            utilisation=self.utilisation,
            engine_scale=scale,
            fitted_from=self.fitted_from(),
        )

    def predict_sampled(
        self,
        plan,
        *,
        engine: str | None = None,
        batch_size: int | None = None,
        workers: int = 1,
        shards: int | None = None,
        model: str | None = None,
    ) -> CampaignPrediction:
        """Price a sampled campaign executing *plan* with live injection."""
        if self.seconds_per_fault <= 0:
            raise CostModelError(
                "cost model holds no measured cells; fit it from a "
                "journal with cell_done events first"
            )
        engine = engine or self.measured_engine
        if batch_size is None:
            batch_size = (
                self.measured_batch_size
                if engine == self.measured_engine
                else self.batch_size_for(engine)
            )
        scale = self.engine_scale(engine, batch_size)
        serial = 0.0
        for item in plan.items:
            layer = getattr(item.subpopulation, "layer", None)
            rate = (
                self.layer_rate(layer)
                if layer is not None
                else self.seconds_per_fault
            )
            serial += item.sample_size * rate
        serial *= scale
        return CampaignPrediction(
            kind="sampled",
            model=model or self.model,
            engine=engine,
            batch_size=int(batch_size),
            workers=int(workers),
            shards=shards,
            fault_evals=int(plan.total_injections),
            serial_seconds=serial,
            wall_seconds=self._wall(serial, workers, shards),
            utilisation=self.utilisation,
            engine_scale=scale,
            fitted_from=self.fitted_from(),
        )

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "measured_engine": self.measured_engine,
            "measured_batch_size": self.measured_batch_size,
            "seconds_per_fault": self.seconds_per_fault,
            "layer_seconds_per_fault": {
                str(layer): rate
                for layer, rate in sorted(self.layer_seconds_per_fault.items())
            },
            "engine_rates": {
                name: rate.to_dict()
                for name, rate in sorted(self.engine_rates.items())
            },
            "utilisation": self.utilisation,
            "host_cpus": self.host_cpus,
            "cells_observed": self.cells_observed,
            "faults_observed": self.faults_observed,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "CostModel":
        rates = {
            name: EngineRate(
                name=row["name"],
                kind=row["kind"],
                batch_size=int(row["batch_size"]),
                faults_per_sec=float(row["faults_per_sec"]),
                backend=row.get("backend", "numpy"),
            )
            for name, row in record.get("engine_rates", {}).items()
        }
        return cls(
            model=record.get("model"),
            measured_engine=record.get("measured_engine", "module"),
            measured_batch_size=int(record.get("measured_batch_size", 1)),
            seconds_per_fault=float(record.get("seconds_per_fault", 0.0)),
            layer_seconds_per_fault={
                int(layer): float(rate)
                for layer, rate in record.get(
                    "layer_seconds_per_fault", {}
                ).items()
            },
            engine_rates=rates,
            utilisation=float(
                record.get("utilisation", DEFAULT_UTILISATION)
            ),
            host_cpus=(
                int(record["host_cpus"])
                if record.get("host_cpus") is not None
                else None
            ),
            cells_observed=int(record.get("cells_observed", 0)),
            faults_observed=int(record.get("faults_observed", 0)),
        )

    def save(self, path: str | os.PathLike) -> None:
        from repro.store import atomic_write_bytes

        payload = json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        atomic_write_bytes(Path(path), payload.encode("utf-8"))

    @classmethod
    def load(cls, path: str | os.PathLike) -> "CostModel":
        with open(path, encoding="utf-8") as stream:
            return cls.from_dict(json.load(stream))


def fit_cost_model(
    summaries: list[CampaignSummary],
    *,
    bench: dict[str, EngineRate] | None = None,
    model: str | None = None,
) -> CostModel:
    """Fit a :class:`CostModel` from journal summaries (+ optional bench).

    Cell wall times come from every summary holding ``cell_done``
    records; worker utilisation from every summary with per-worker
    accounting (fleet journals).  The measured engine/batch is taken
    from the first campaign that declared one (``campaign_start``
    carries both since the plan engine landed).  The fit host's core
    count is recorded so wall predictions never assume more parallelism
    than the hardware offers.
    """
    layer_seconds: dict[int, float] = {}
    layer_faults: dict[int, int] = {}
    total_seconds = 0.0
    total_faults = 0
    cells = 0
    utilisations: list[float] = []
    measured_engine = None
    measured_batch = None
    fitted_model = model
    for summary in summaries:
        if fitted_model is None:
            fitted_model = summary.info.get("model")
        if measured_engine is None and "engine" in summary.info:
            measured_engine = summary.info["engine"]
            measured_batch = int(summary.info.get("batch_size", 1))
        for cell in summary.cells:
            if cell.faults <= 0 or cell.seconds < 0:
                continue
            layer_seconds[cell.layer] = (
                layer_seconds.get(cell.layer, 0.0) + cell.seconds
            )
            layer_faults[cell.layer] = (
                layer_faults.get(cell.layer, 0) + cell.faults
            )
            total_seconds += cell.seconds
            total_faults += cell.faults
            cells += 1
        for worker in summary.workers:
            if worker.utilisation > 0:
                utilisations.append(min(1.0, worker.utilisation))
    if total_faults <= 0:
        raise CostModelError(
            "no measured cells in the supplied journals; run a campaign "
            "with --trace first (cell_done events are the model's input)"
        )
    utilisation = (
        sum(utilisations) / len(utilisations)
        if utilisations
        else DEFAULT_UTILISATION
    )
    return CostModel(
        model=fitted_model,
        measured_engine=measured_engine or "module",
        measured_batch_size=measured_batch or 1,
        seconds_per_fault=total_seconds / total_faults,
        layer_seconds_per_fault={
            layer: layer_seconds[layer] / layer_faults[layer]
            for layer in sorted(layer_seconds)
            if layer_faults[layer] > 0
        },
        engine_rates=dict(bench or {}),
        utilisation=utilisation,
        host_cpus=os.cpu_count(),
        cells_observed=cells,
        faults_observed=total_faults,
    )


# -- auto-tuned submit ------------------------------------------------------


@dataclass(frozen=True)
class SubmitChoice:
    """Engine / batch / shard choice for an auto-tuned submission."""

    engine: str
    batch_size: int
    shards: int
    prediction: CampaignPrediction

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "batch_size": self.batch_size,
            "shards": self.shards,
            "prediction": self.prediction.to_dict(),
        }


def choose_submit_settings(
    cost_model: CostModel,
    space,
    *,
    workers: int = 1,
    target_shard_seconds: float = DEFAULT_TARGET_SHARD_SECONDS,
    allowed_engines: tuple[str, ...] = ("plan", "plan_vectorized", "module"),
    model: str | None = None,
) -> SubmitChoice:
    """Pick engine kind, batch size and shard count from the model.

    The engine is the fastest benched configuration among
    *allowed_engines* (the measured engine when no bench is loaded);
    the shard count targets *target_shard_seconds* of predicted wall
    time per shard, clamped so the fleet is never starved (at least one
    shard per worker) and shards never go below one cell.
    """
    candidates: list[tuple[str, int]] = []
    for rate in cost_model.engine_rates.values():
        if rate.kind in allowed_engines:
            candidates.append((rate.kind, rate.batch_size))
    if not candidates:
        candidates = [
            (cost_model.measured_engine, cost_model.measured_batch_size)
        ]
    best = None
    for kind, batch_size in sorted(candidates):
        prediction = cost_model.predict_exhaustive(
            space,
            engine=kind,
            batch_size=batch_size,
            workers=workers,
            model=model,
        )
        if best is None or prediction.serial_seconds < best.serial_seconds:
            best = prediction
    cells = len(space.layers) * space.bits
    if target_shard_seconds <= 0:
        raise CostModelError(
            f"target shard seconds must be positive, got {target_shard_seconds}"
        )
    shards = math.ceil(best.serial_seconds / target_shard_seconds)
    shards = max(shards, workers, 1)
    shards = min(shards, cells)
    prediction = cost_model.predict_exhaustive(
        space,
        engine=best.engine,
        batch_size=best.batch_size,
        workers=workers,
        shards=shards,
        model=model,
    )
    return SubmitChoice(
        engine=best.engine,
        batch_size=best.batch_size,
        shards=shards,
        prediction=prediction,
    )


# -- predicted vs actual ----------------------------------------------------


@dataclass(frozen=True)
class PredictionComparison:
    """One journalled prediction against the work observed after it."""

    prediction: dict  # campaign_predicted event fields
    actual_wall_seconds: float | None
    actual_fault_evals: int
    actual_summaries: int  # how many journal summaries carried the work

    @property
    def resolved(self) -> bool:
        return self.actual_wall_seconds is not None

    @property
    def wall_ratio(self) -> float | None:
        predicted = float(self.prediction.get("wall_seconds") or 0.0)
        if not self.resolved or predicted <= 0:
            return None
        return self.actual_wall_seconds / predicted

    @property
    def evals_ratio(self) -> float | None:
        predicted = int(self.prediction.get("fault_evals") or 0)
        if not self.resolved or predicted <= 0:
            return None
        return self.actual_fault_evals / predicted

    def to_dict(self) -> dict:
        prediction = {
            key: value
            for key, value in self.prediction.items()
            if key != "t"
        }
        return {
            "prediction": prediction,
            "actual_wall_seconds": self.actual_wall_seconds,
            "actual_fault_evals": self.actual_fault_evals,
            "actual_summaries": self.actual_summaries,
            "wall_ratio": self.wall_ratio,
            "evals_ratio": self.evals_ratio,
        }


def predicted_vs_actual(
    summaries: list[CampaignSummary],
) -> list[PredictionComparison]:
    """Match journalled predictions to the work that followed them.

    Each ``campaign_predicted`` event is compared against the aggregate
    of every summary whose *work* (cell/shard events) started at or
    after the prediction was issued — a distributed fleet's per-worker
    journals collapse into one actual wall clock (monotonic clocks are
    system-wide on Linux, so cross-process windows compose).
    """
    predictions = sorted(
        (p for s in summaries for p in s.predictions),
        key=lambda p: float(p.get("t", 0.0)),
    )
    work = [
        s
        for s in summaries
        if (s.faults_classified > 0 or s.shards_done > 0)
        and s.work_t_first is not None
    ]
    comparisons = []
    for prediction in predictions:
        issued = float(prediction.get("t", 0.0))
        group = [s for s in work if s.work_t_first >= issued]
        if not group:
            comparisons.append(
                PredictionComparison(
                    prediction=prediction,
                    actual_wall_seconds=None,
                    actual_fault_evals=0,
                    actual_summaries=0,
                )
            )
            continue
        wall = max(s.work_t_last for s in group) - min(
            s.work_t_first for s in group
        )
        comparisons.append(
            PredictionComparison(
                prediction=prediction,
                actual_wall_seconds=wall,
                actual_fault_evals=sum(s.faults_classified for s in group),
                actual_summaries=len(group),
            )
        )
    return comparisons


def format_comparisons(comparisons: list[PredictionComparison]) -> str:
    """The ``repro-stats`` predicted-vs-actual section."""
    lines = ["predicted vs actual:"]
    for cmp in comparisons:
        p = cmp.prediction
        lines.append(
            f"  predicted [{p.get('kind', '?')}] "
            f"engine={p.get('engine', '?')} batch={p.get('batch_size', '?')} "
            f"workers={p.get('workers', '?')} shards={p.get('shards')}: "
            f"{float(p.get('wall_seconds') or 0.0):.2f}s wall, "
            f"{int(p.get('fault_evals') or 0):,} fault-evals"
        )
        if not cmp.resolved:
            lines.append("    actual: no campaign work observed after it")
            continue
        lines.append(
            f"    actual ({cmp.actual_summaries} journal segment(s)): "
            f"{cmp.actual_wall_seconds:.2f}s wall, "
            f"{cmp.actual_fault_evals:,} fault-evals"
        )
        wall_ratio = cmp.wall_ratio
        evals_ratio = cmp.evals_ratio
        if wall_ratio is not None:
            error = (wall_ratio - 1.0) * 100.0
            line = (
                f"    error: wall {error:+.1f}% "
                f"(actual/predicted {wall_ratio:.2f}x)"
            )
            if evals_ratio is not None:
                line += f", fault-evals {(evals_ratio - 1.0) * 100.0:+.1f}%"
            lines.append(line)
    return "\n".join(lines)
