"""Campaign telemetry: event journal, metrics and profiling hooks.

The fault-injection stack is instrumented end to end, off by default:

- :mod:`repro.telemetry.events` — the typed event vocabulary
  (``campaign_start`` … ``campaign_end``) with monotonic + wall clocks
  and run ids.
- :mod:`repro.telemetry.journal` — the durable record: an append-only
  JSONL file whose appends are single ``O_APPEND`` writes
  (:func:`repro.store.atomic_append_line`), safe to share between the
  campaign parent and its fork-pool workers.
- :mod:`repro.telemetry.metrics` — in-process counters, gauges and
  histogram timers, snapshot to JSON.
- :mod:`repro.telemetry.spans` — context-manager profiling spans around
  the hot paths.
- :mod:`repro.telemetry.core` — the :class:`Telemetry` sink threaded
  through the stack, and the zero-cost :class:`NullTelemetry` default.
- :mod:`repro.telemetry.stats` — journal summarisation (cell wall
  times, faults/sec, worker utilisation) behind the ``repro-stats`` CLI.
- :mod:`repro.telemetry.costmodel` — the campaign cost model fitted
  from those summaries: predicts wall clock and fault-evaluations per
  engine/batch/worker choice, tunes ``repro-dist submit --auto``, and
  is validated by predicted-vs-actual accounting in ``repro-stats``.

Instrumented call sites accept ``telemetry=None`` and gate on
``telemetry.enabled``, so the disabled path costs one attribute read per
cell/batch — never per fault — and allocates nothing.
"""

from repro.telemetry.costmodel import (
    CampaignPrediction,
    CostModel,
    CostModelError,
    EngineRate,
    PredictionComparison,
    SubmitChoice,
    choose_submit_settings,
    fit_cost_model,
    format_comparisons,
    load_bench,
    predicted_vs_actual,
)
from repro.telemetry.core import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    progress_printer,
    resolve_telemetry,
)
from repro.telemetry.events import EVENT_TYPES, Event, new_run_id
from repro.telemetry.journal import Journal, read_journal
from repro.telemetry.metrics import Counter, Gauge, MetricsRegistry, Timer
from repro.telemetry.spans import NULL_SPAN, Span
from repro.telemetry.stats import (
    CampaignSummary,
    CellTiming,
    SpanStats,
    WorkerStats,
    format_summary,
    summarize_journal,
)

__all__ = [
    "EVENT_TYPES",
    "Event",
    "Journal",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "CampaignPrediction",
    "CampaignSummary",
    "CellTiming",
    "CostModel",
    "CostModelError",
    "Counter",
    "EngineRate",
    "Gauge",
    "MetricsRegistry",
    "PredictionComparison",
    "Span",
    "SpanStats",
    "SubmitChoice",
    "Telemetry",
    "Timer",
    "WorkerStats",
    "choose_submit_settings",
    "fit_cost_model",
    "format_comparisons",
    "format_summary",
    "load_bench",
    "new_run_id",
    "predicted_vs_actual",
    "progress_printer",
    "read_journal",
    "resolve_telemetry",
    "summarize_journal",
]
