"""Journal summarisation: from raw events to campaign statistics.

This is the read side of the telemetry subsystem (the ``repro-stats``
CLI is a thin shell around it): group a journal's events by run id and
reconstruct, per campaign, what the operator actually asks about —
per-(layer, bit) cell wall times, overall faults/sec and inferences/sec,
per-worker utilisation, checkpoint/resume behaviour, and per-phase span
timings.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.telemetry.events import Event
from repro.telemetry.journal import read_journal


@dataclass(frozen=True)
class CellTiming:
    """Wall time of one classified (layer, bit) cell."""

    layer: int
    bit: int
    seconds: float
    faults: int
    inferences: int
    pid: int


@dataclass(frozen=True)
class WorkerStats:
    """One process's share of a campaign."""

    pid: int
    cells: int
    busy_seconds: float
    utilisation: float  # busy_seconds / campaign wall time, in [0, 1]ish


@dataclass(frozen=True)
class SpanStats:
    """Aggregated timings of one named span."""

    name: str
    count: int
    total_seconds: float
    mean_seconds: float
    max_seconds: float


@dataclass
class CampaignSummary:
    """Everything the journal says about one run id."""

    run_id: str
    kind: str  # "exhaustive" | "sampled" | "train" | "unknown"
    started_wall: float | None = None
    elapsed_seconds: float = 0.0
    finished: bool = False
    # Work accounting.
    population: int | None = None  # total faults in the space, if known
    faults_classified: int = 0  # classified *in this run* (resumes excluded)
    inferences: int = 0
    cells: list[CellTiming] = field(default_factory=list)
    # Plan-engine accounting (zero when the module engine ran).
    tail_passes: int = 0  # stacked tail passes (each covers >= 1 faults)
    ops_executed: int = 0  # plan ops recomputed across all tail passes
    ops_cached: int = 0  # plan ops served from the golden op cache
    # Checkpointing.
    cells_resumed: int = 0
    cells_total: int | None = None
    checkpoint_writes: int = 0
    resumed: bool = False
    # Concurrency.
    workers: list[WorkerStats] = field(default_factory=list)
    heartbeats: int = 0
    # Distributed shards (repro.dist campaigns).
    shards_done: int = 0
    shards_requeued: int = 0
    shards_poisoned: int = 0
    shards_split: int = 0
    shard_workers: list[str] = field(default_factory=list)
    merged: bool = False
    # Idle accounting (starvation vs slowness for the cost model).
    idle_events: int = 0
    idle_workers: list[str] = field(default_factory=list)
    # Cost-model predictions issued in this run (``campaign_predicted``
    # event fields, plus the event's monotonic ``t``).
    predictions: list[dict] = field(default_factory=list)
    # Monotonic window of actual campaign *work* (cell/shard/progress
    # events) — lets a fleet of per-worker summaries be aggregated into
    # one actual wall clock for predicted-vs-actual accounting.
    work_t_first: float | None = None
    work_t_last: float | None = None
    # Profiling.
    spans: list[SpanStats] = field(default_factory=list)
    # Anything the campaign_start event carried (model, method, ...).
    info: dict = field(default_factory=dict)

    @property
    def faults_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.faults_classified / self.elapsed_seconds

    @property
    def inferences_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.inferences / self.elapsed_seconds

    @property
    def batched_faults_per_pass(self) -> float:
        """Mean logical fault inferences amortised per stacked tail pass."""
        if not self.tail_passes:
            return 0.0
        return self.inferences / self.tail_passes

    @property
    def op_cache_hit_rate(self) -> float:
        """Fraction of plan ops served from the golden op cache."""
        total = self.ops_executed + self.ops_cached
        if not total:
            return 0.0
        return self.ops_cached / total

    @property
    def resume_hit_rate(self) -> float:
        """Fraction of the space's cells served from the checkpoint."""
        if not self.cells_total:
            return 0.0
        return self.cells_resumed / self.cells_total

    def cell_seconds(self) -> dict[tuple[int, int], float]:
        """(layer, bit) -> wall seconds for every cell classified here."""
        return {(c.layer, c.bit): c.seconds for c in self.cells}

    def slowest_cells(self, n: int = 10) -> list[CellTiming]:
        return sorted(self.cells, key=lambda c: c.seconds, reverse=True)[:n]


def summarize_journal(
    source: str | os.PathLike | list[Event],
) -> list[CampaignSummary]:
    """Summaries of every campaign in a journal, in first-seen order.

    Events are grouped by run id, then split into one summary per
    campaign: a single CLI invocation shares one run id across e.g. an
    exhaustive ground-truth run followed by the sampled campaign, and
    merging those would blend their throughputs into nonsense.
    """
    events = source if isinstance(source, list) else read_journal(source)
    by_run: dict[str, list[Event]] = {}
    for event in events:
        by_run.setdefault(event.run_id, []).append(event)
    summaries = []
    for run_id, evs in by_run.items():
        for segment in _split_campaigns(evs):
            summaries.append(_summarize_run(run_id, segment))
    return summaries


def _split_campaigns(events: list[Event]) -> list[list[Event]]:
    """Split one run's events at ``campaign_start`` boundaries.

    Events preceding the first ``campaign_start`` (planning spans,
    cache-hit records, ...) stay with the first campaign.
    """
    segments: list[list[Event]] = [[]]
    started = False
    for event in events:
        if event.type == "campaign_start" and started:
            segments.append([])
        if event.type == "campaign_start":
            started = True
        segments[-1].append(event)
    return segments


_WORK_EVENTS = frozenset(
    {
        "cell_start",
        "cell_done",
        "checkpoint_write",
        "progress",
        "shard_claim",
        "shard_done",
        "shard_fail",
        "worker_heartbeat",
    }
)


def _summarize_run(run_id: str, events: list[Event]) -> CampaignSummary:
    summary = CampaignSummary(run_id=run_id, kind="unknown")
    start_t: float | None = None
    end_t: float | None = None
    explicit_elapsed: float | None = None
    span_acc: dict[str, list[float]] = {}
    worker_busy: dict[int, list[float]] = {}
    shard_workers: list[str] = summary.shard_workers

    for event in events:
        f = event.fields
        if event.type in _WORK_EVENTS:
            if summary.work_t_first is None:
                summary.work_t_first = event.t
            summary.work_t_last = event.t
        if event.type == "campaign_start":
            start_t = event.t
            summary.started_wall = event.wall
            summary.kind = f.get("kind", "unknown")
            summary.population = f.get("total")
            summary.cells_total = f.get("cells_total")
            summary.info = {
                k: v
                for k, v in f.items()
                if k not in {"kind", "total", "cells_total"}
            }
        elif event.type == "campaign_end":
            end_t = event.t
            summary.finished = True
            if "elapsed_seconds" in f:
                explicit_elapsed = float(f["elapsed_seconds"])
            for key, value in f.items():
                if key != "elapsed_seconds":
                    summary.info.setdefault(key, value)
        elif event.type == "cell_done":
            if "layer" not in f or "bit" not in f:
                continue  # torn or foreign record: summarise what's present
            timing = CellTiming(
                layer=int(f["layer"]),
                bit=int(f["bit"]),
                seconds=float(f.get("seconds", 0.0)),
                faults=int(f.get("faults", 0)),
                inferences=int(f.get("inferences", 0)),
                pid=event.pid,
            )
            summary.cells.append(timing)
            summary.faults_classified += timing.faults
            summary.inferences += timing.inferences
            summary.tail_passes += int(f.get("tail_passes", 0))
            summary.ops_executed += int(f.get("ops_executed", 0))
            summary.ops_cached += int(f.get("ops_cached", 0))
            worker_busy.setdefault(event.pid, []).append(timing.seconds)
        elif event.type == "checkpoint_write":
            summary.checkpoint_writes += 1
        elif event.type == "checkpoint_resume":
            summary.resumed = True
            summary.cells_resumed = int(f.get("cells_resumed", 0))
            if summary.cells_total is None:
                summary.cells_total = f.get("cells_total")
        elif event.type == "worker_heartbeat":
            summary.heartbeats += 1
        elif event.type == "shard_done":
            summary.shards_done += 1
            worker = f.get("worker")
            if worker and worker not in shard_workers:
                shard_workers.append(worker)
        elif event.type == "shard_requeue":
            summary.shards_requeued += 1
        elif event.type == "shard_poison":
            summary.shards_poisoned += 1
        elif event.type == "shard_split":
            summary.shards_split += 1
        elif event.type == "merge_done":
            summary.merged = True
        elif event.type == "campaign_predicted":
            summary.predictions.append({**f, "t": event.t})
        elif event.type == "worker_idle":
            summary.idle_events += 1
            worker = f.get("worker")
            if worker and worker not in summary.idle_workers:
                summary.idle_workers.append(worker)
        elif event.type == "span":
            if "name" not in f or "seconds" not in f:
                continue  # span whose end never landed (killed mid-section)
            span_acc.setdefault(f["name"], []).append(float(f["seconds"]))
        elif event.type == "epoch_done":
            summary.kind = "train"

    if summary.kind == "unknown" and (
        summary.shards_done or summary.shards_requeued
    ):
        # A per-worker journal from a distributed campaign: shard events
        # but no campaign_start (that one lives in the submitter's log).
        summary.kind = "dist-worker"

    # Prefer the campaign's own elapsed measure; fall back to the event
    # timestamp window (e.g. for killed runs with no campaign_end).
    times = [event.t for event in events]
    window_start = start_t if start_t is not None else min(times)
    window_end = end_t if end_t is not None else max(times)
    summary.elapsed_seconds = max(0.0, window_end - window_start)
    if explicit_elapsed is not None:
        summary.elapsed_seconds = explicit_elapsed

    window = summary.elapsed_seconds
    for pid in sorted(worker_busy):
        busy = sum(worker_busy[pid])
        summary.workers.append(
            WorkerStats(
                pid=pid,
                cells=len(worker_busy[pid]),
                busy_seconds=busy,
                utilisation=busy / window if window > 0 else 0.0,
            )
        )

    for name in sorted(span_acc):
        samples = span_acc[name]
        summary.spans.append(
            SpanStats(
                name=name,
                count=len(samples),
                total_seconds=sum(samples),
                mean_seconds=sum(samples) / len(samples),
                max_seconds=max(samples),
            )
        )
    return summary


# -- rendering ------------------------------------------------------------


def format_summary(summary: CampaignSummary, *, top_cells: int = 10) -> str:
    """One campaign as a human-readable block of tables."""
    lines: list[str] = []
    title = f"run {summary.run_id} [{summary.kind}]"
    if summary.started_wall is not None and not summary.finished:
        title += " (no campaign_end — killed or still running)"
    lines.append(title)
    info = " ".join(f"{k}={v}" for k, v in sorted(summary.info.items()))
    if info:
        lines.append(f"  {info}")
    lines.append(f"  elapsed: {summary.elapsed_seconds:.2f}s")
    if summary.population is not None:
        lines.append(f"  population: {summary.population:,} faults")
    if summary.faults_classified:
        lines.append(
            f"  classified this run: {summary.faults_classified:,} faults "
            f"({summary.faults_per_second:,.0f} faults/sec), "
            f"{summary.inferences:,} inferences "
            f"({summary.inferences_per_second:,.0f} inferences/sec)"
        )
    if summary.tail_passes:
        lines.append(
            f"  plan engine: {summary.tail_passes:,} tail passes "
            f"({summary.batched_faults_per_pass:.1f} faults/pass), "
            f"op cache hit rate {summary.op_cache_hit_rate * 100:.0f}% "
            f"({summary.ops_cached:,} cached / {summary.ops_executed:,} "
            "executed)"
        )
    if summary.cells_total is not None:
        lines.append(
            f"  checkpoint: {summary.cells_resumed}/{summary.cells_total} "
            f"cells resumed (hit rate {summary.resume_hit_rate * 100:.0f}%), "
            f"{summary.checkpoint_writes} cell writes"
        )
    if summary.shards_done or summary.shards_requeued or summary.shards_poisoned:
        shard_line = (
            f"  shards: {summary.shards_done} done, "
            f"{summary.shards_requeued} requeued, "
            f"{summary.shards_poisoned} poisoned"
        )
        if summary.shards_split:
            shard_line += f", {summary.shards_split} split"
        if summary.shard_workers:
            shard_line += (
                f" across {len(summary.shard_workers)} worker(s): "
                + ", ".join(summary.shard_workers)
            )
        if summary.merged:
            shard_line += " [merged]"
        lines.append(shard_line)
    if summary.idle_events:
        idle = ", ".join(summary.idle_workers) or "unnamed"
        lines.append(
            f"  idle: {summary.idle_events} worker_idle event(s) "
            f"from {idle} (queue drained / starved, not slow)"
        )
    if summary.predictions:
        for prediction in summary.predictions:
            wall = prediction.get("wall_seconds")
            evals = prediction.get("fault_evals")
            lines.append(
                "  prediction: "
                f"engine={prediction.get('engine', '?')} "
                f"batch={prediction.get('batch_size', '?')} "
                f"workers={prediction.get('workers', '?')} -> "
                f"{float(wall):.2f}s wall, {int(evals):,} fault-evals"
                if wall is not None and evals is not None
                else f"  prediction: {prediction}"
            )
    if summary.workers:
        lines.append(
            f"  workers ({len(summary.workers)} pids, "
            f"{summary.heartbeats} heartbeats):"
        )
        lines.append("    pid        cells   busy(s)   utilisation")
        for w in summary.workers:
            lines.append(
                f"    {w.pid:<10d} {w.cells:>5d} {w.busy_seconds:>9.2f}"
                f"   {w.utilisation * 100:>6.1f}%"
            )
    if summary.spans:
        lines.append("  phases (span timings):")
        lines.append(
            "    name                               count   total(s)"
            "    mean(s)     max(s)"
        )
        for s in summary.spans:
            lines.append(
                f"    {s.name:<34s} {s.count:>5d} {s.total_seconds:>10.3f}"
                f" {s.mean_seconds:>10.4f} {s.max_seconds:>10.4f}"
            )
    if summary.cells:
        slowest = summary.slowest_cells(top_cells)
        lines.append(f"  slowest cells (top {len(slowest)}):")
        lines.append("    layer  bit   seconds    faults  inferences")
        for c in slowest:
            lines.append(
                f"    {c.layer:>5d} {c.bit:>4d} {c.seconds:>9.4f}"
                f" {c.faults:>9,d} {c.inferences:>11,d}"
            )
    return "\n".join(lines)
