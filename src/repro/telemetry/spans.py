"""Profiling spans: context managers timing named code sections.

A span always lands in the metrics registry (one histogram per name,
constant memory no matter how hot the path).  Coarse spans — a whole
campaign, one training epoch — additionally emit a journal event when
asked (``emit=True``); per-fault spans must not, or an exhaustive
campaign's journal would grow by one line per inference.
"""

from __future__ import annotations

import time

from repro.telemetry.journal import Journal
from repro.telemetry.metrics import MetricsRegistry


class Span:
    """Times one section; records on exit even when the body raises."""

    __slots__ = ("name", "metrics", "journal", "emit", "fields", "_start", "seconds")

    def __init__(
        self,
        name: str,
        metrics: MetricsRegistry,
        journal: Journal | None = None,
        *,
        emit: bool = False,
        fields: dict | None = None,
    ) -> None:
        self.name = name
        self.metrics = metrics
        self.journal = journal
        self.emit = emit
        self.fields = fields or {}
        self._start = 0.0
        self.seconds: float | None = None

    def __enter__(self) -> "Span":
        self._start = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = time.monotonic() - self._start
        self.metrics.timer(f"span.{self.name}").observe(self.seconds)
        if self.emit and self.journal is not None:
            self.journal.emit(
                "span", name=self.name, seconds=self.seconds, **self.fields
            )


class _NullSpan:
    """A reusable no-op span: entering and exiting does nothing.

    One shared instance serves every disabled call site, so the disabled
    path costs a method call returning a constant — nothing is allocated.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()
