"""In-process metrics: counters, gauges and histogram timers.

The registry is deliberately tiny — a campaign needs throughput numbers
(faults/sec, inferences/sec), a handful of gauges, and wall-time
histograms per profiled section, all snapshotted to JSON at the end of a
run.  It is not a live monitoring system; the journal is the durable
record, the registry is the cheap aggregate view.

Fork caveat: pool workers get a copy-on-write *copy* of the registry, so
worker-side increments never reach the parent.  Anything workers must
report flows through the journal (events survive the process boundary);
the parent aggregates worker events into its own registry.
"""

from __future__ import annotations

import json
import math
import os
import time
from contextlib import contextmanager
from typing import Iterator

from repro.store.atomic import atomic_write_bytes


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def add(self, n: int | float = 1) -> None:
        self.value += n

    def snapshot(self) -> int | float:
        return self.value


class Gauge:
    """A last-write-wins scalar."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> float | None:
        return self.value


class Timer:
    """A wall-time histogram: count / total / min / max / mean.

    Stores aggregates, not samples — a campaign classifies hundreds of
    cells and millions of faults, and the per-(layer, bit) detail lives
    in the journal already.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    @contextmanager
    def time(self) -> Iterator[None]:
        start = time.monotonic()
        try:
            yield
        finally:
            self.observe(time.monotonic() - start)

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total_seconds": self.total,
            "min_seconds": self.min if self.count else 0.0,
            "max_seconds": self.max,
            "mean_seconds": self.total / self.count if self.count else 0.0,
        }


class MetricsRegistry:
    """Named counters/gauges/timers with a JSON snapshot."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge())

    def timer(self, name: str) -> Timer:
        return self._timers.setdefault(name, Timer())

    def snapshot(self) -> dict:
        """All metrics as one JSON-serialisable dict."""
        return {
            "counters": {
                name: c.snapshot() for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.snapshot() for name, g in sorted(self._gauges.items())
            },
            "timers": {
                name: t.snapshot() for name, t in sorted(self._timers.items())
            },
        }

    def save(self, path: str | os.PathLike) -> None:
        """Atomically write the snapshot as JSON."""
        atomic_write_bytes(
            path,
            (json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n").encode(
                "utf-8"
            ),
        )
