"""Published reference numbers from the paper (Tables I-III).

These constants let tests and benchmarks compare this reproduction's
arithmetic digit-for-digit against the published tables.

Note on the ResNet-20 parameter counts: the paper's Table I lists layer 11
as 9,226 weights where the standard topology has 9,216 (a +10 anomaly,
likely the classifier bias folded in or a typo).  The standard counts below
sum to 268,336; the paper's to 268,346.  Both are carried so tests can be
explicit about which population they check.
"""

from __future__ import annotations

#: Table I, column "Parameters (32-bit FP)" exactly as published.
RESNET20_PAPER_LAYER_PARAMS = (
    432, 2304, 2304, 2304, 2304, 2304, 2304, 4608,
    9216, 9216, 9216, 9226, 9216, 18432,
    36864, 36864, 36864, 36864, 36864, 640,
)

#: The standard ResNet-20 weight-layer sizes (what this repo's model has).
RESNET20_STANDARD_LAYER_PARAMS = (
    432, 2304, 2304, 2304, 2304, 2304, 2304, 4608,
    9216, 9216, 9216, 9216, 9216, 18432,
    36864, 36864, 36864, 36864, 36864, 640,
)

#: Table I, "Exhaustive FI" column (params x 32 bits x 2 stuck-at models).
RESNET20_EXHAUSTIVE = tuple(p * 64 for p in RESNET20_PAPER_LAYER_PARAMS)

#: Table I, "Network-wise [9]" per-layer column (e=1%, 99% confidence).
RESNET20_NETWORK_WISE = (
    27, 143, 143, 143, 143, 143, 143, 285,
    571, 571, 571, 572, 571, 1142,
    2284, 2284, 2284, 2284, 2284, 40,
)

#: Table I, "Layer-wise" per-layer column.
RESNET20_LAYER_WISE = (
    10389, 14954, 14954, 14954, 14954, 14954, 14954, 15752,
    16184, 16184, 16184, 16185, 16184, 16410,
    16524, 16524, 16524, 16524, 16524, 11834,
)

#: Table I, "Data-unaware (p==0.5)" per-layer column.
RESNET20_DATA_UNAWARE = (
    26272, 115488, 115488, 115488, 115488, 115488, 115488, 189792,
    279872, 279872, 279872, 280000, 279872, 366912,
    434464, 434464, 434464, 434464, 434464, 38048,
)

#: Table I, "Data-aware (p!=0.5)" per-layer column (depends on the trained
#: CIFAR-10 weights the authors used; reproduced in *shape* only).
RESNET20_DATA_AWARE = (
    2732, 6258, 6258, 6258, 6258, 6258, 6258, 8744,
    11652, 11652, 11652, 11656, 11652, 14425,
    16563, 16563, 16563, 16563, 16563, 3309,
)

#: Table I totals row.
RESNET20_TOTALS = {
    "parameters": 268_346,
    "exhaustive": 17_174_144,
    "network-wise": 16_625,
    "layer-wise": 307_650,
    "data-unaware": 4_885_760,
    "data-aware": 207_837,
}

#: Table II (MobileNetV2) totals.
MOBILENETV2_TOTALS = {
    "layers": 54,
    "parameters": 2_203_584,
    "exhaustive": 141_029_376,
    "network-wise": 16_639,
    "layer-wise": 838_988,
    "data-unaware": 14_894_400,
    "data-aware": 778_951,
}

#: Table III: (injections, injected %, average error margin %) per method.
TABLE3_RESNET20 = {
    "exhaustive": (17_174_144, 100.0, None),
    "network-wise": (16_625, 0.10, 1.57),
    "layer-wise": (307_650, 1.79, 0.19),
    "data-unaware": (4_885_760, 28.45, 0.06),
    "data-aware": (207_837, 1.21, 0.08),
}

TABLE3_MOBILENETV2 = {
    "exhaustive": (141_029_376, 100.0, None),
    "network-wise": (16_639, 0.01, 3.28),
    "layer-wise": (838_988, 0.59, 0.01),
    "data-unaware": (14_894_400, 10.56, 0.004),
    "data-aware": (778_951, 0.55, 0.008),
}

#: Headline claims from the abstract/conclusions.
HEADLINE = {
    "resnet20_injected_percent": 1.21,
    "mobilenetv2_injected_percent": 0.55,
    "margin_target_percent": 1.0,
    "resnet20_accuracy": 0.917,
    "mobilenetv2_accuracy": 0.9201,
    "statistical_fraction_claim": 1.50,  # "about 1.50% of the possible faults"
}

#: Campaign configuration shared by all of the paper's SFI variants.
CAMPAIGN_CONFIG = {
    "error_margin": 0.01,
    "confidence": 0.99,
    "t": 2.58,
    "p_safe": 0.5,
}
