"""A small plain (VGG-style) CNN — no residuals, no depthwise tricks.

The paper evaluates a residual network and an inverted-residual network;
a plain convolutional stack completes the family coverage and exercises
the statistical machinery on a topology with no skip connections (every
fault's effect propagates through the full depth).
"""

from __future__ import annotations

import numpy as np

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    Module,
    Sequential,
)
from repro.nn import functional as F
from repro.tensor import Tensor, ops


class _ConvBlock(Module):
    """conv -> batch norm -> ReLU, optionally followed by 2x2 pooling."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        *,
        pool: bool,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.conv = Conv2d(in_channels, out_channels, 3, padding=1, rng=rng)
        self.bn = BatchNorm2d(out_channels)
        self.pool = AvgPool2d(2) if pool else None

    def forward(self, x: Tensor) -> Tensor:
        out = ops.relu(self.bn(self.conv(x)))
        if self.pool is not None:
            out = self.pool(out)
        return out

    def forward_fast(self, x: np.ndarray) -> np.ndarray:
        out = F.relu(self.bn.forward_fast(self.conv.forward_fast(x)))
        if self.pool is not None:
            out = self.pool.forward_fast(out)
        return out

    def capture(self, builder, x: int) -> int:
        out = builder.emit(
            "relu", (self.bn.capture(builder, self.conv.capture(builder, x)),)
        )
        if self.pool is not None:
            out = self.pool.capture(builder, out)
        return out


class _Head(Module):
    """Global average pooling + linear classifier."""

    def __init__(
        self, in_features: int, num_classes: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(in_features, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc(self.pool(x))

    def forward_fast(self, x: np.ndarray) -> np.ndarray:
        return self.fc.forward_fast(self.pool.forward_fast(x))

    def capture(self, builder, x: int) -> int:
        return self.fc.capture(builder, self.pool.capture(builder, x))


class VGGCIFAR(Module):
    """Plain conv stack for 32x32 inputs.

    ``widths`` gives the channel count per block; a 2x2 average pooling
    follows every block except the first.  Weight layers = blocks + 1.
    """

    def __init__(
        self,
        widths: tuple[int, ...] = (8, 16, 24, 32),
        num_classes: int = 10,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not widths:
            raise ValueError("widths must be non-empty")
        rng = np.random.default_rng(seed)
        blocks: list[_ConvBlock] = []
        in_channels = 3
        for idx, width in enumerate(widths):
            blocks.append(
                _ConvBlock(in_channels, width, pool=idx > 0, rng=rng)
            )
            in_channels = width
        self.blocks = Sequential(*blocks)
        self.head = _Head(widths[-1], num_classes, rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.blocks(x))

    def forward_fast(self, x: np.ndarray) -> np.ndarray:
        return self.head.forward_fast(self.blocks.forward_fast(x))

    def capture(self, builder, x: int) -> int:
        return self.head.capture(builder, self.blocks.capture(builder, x))

    def stage_modules(self) -> list[Module]:
        """Sequential stages for the prefix-cached FI inference engine."""
        return [*self.blocks, self.head]


def vgg_mini(num_classes: int = 10, seed: int = 0) -> VGGCIFAR:
    """A ~5k-weight plain CNN (5 weight layers)."""
    return VGGCIFAR(widths=(6, 10, 14, 18), num_classes=num_classes, seed=seed)
