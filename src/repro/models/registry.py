"""Model registry and pretrained-weight loading."""

from __future__ import annotations

from pathlib import Path

from repro.models.mobilenet import mobilenetv2, mobilenetv2_mini
from repro.models.resnet import resnet14_mini, resnet20, resnet20_mini, resnet8_mini
from repro.models.vgg import vgg_mini
from repro.nn import Module, load_state
from repro.utils import artifacts_dir

#: Name -> constructor for every model in the zoo.
MODELS = {
    "resnet20": resnet20,
    "resnet20_mini": resnet20_mini,
    "resnet8_mini": resnet8_mini,
    "resnet14_mini": resnet14_mini,
    "vgg_mini": vgg_mini,
    "mobilenetv2": mobilenetv2,
    "mobilenetv2_mini": mobilenetv2_mini,
}


def pretrained_path(name: str) -> Path:
    """Path where trained weights for model *name* are stored."""
    return artifacts_dir() / "weights" / f"{name}.npz"


def create_model(name: str, *, pretrained: bool = False, seed: int = 0) -> Module:
    """Instantiate a model by registry *name*, optionally with weights.

    ``pretrained=True`` loads weights produced by ``examples/train_models.py``
    (or :func:`repro.train.train_reference_model`); a missing weight file
    raises ``FileNotFoundError`` with the command that generates it.
    """
    try:
        constructor = MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODELS)}"
        ) from None
    model = constructor(seed=seed)
    if pretrained:
        load_pretrained(model, name)
    return model


def load_pretrained(model: Module, name: str) -> None:
    """Load trained weights for *name* into *model* (in place)."""
    path = pretrained_path(name)
    if not path.is_file():
        raise FileNotFoundError(
            f"no trained weights at {path}; generate them with "
            f"`python examples/train_models.py --model {name}`"
        )
    load_state(
        model,
        path,
        regenerate=f"python examples/train_models.py --model {name}",
    )
    model.eval()
