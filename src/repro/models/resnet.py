"""CIFAR-style ResNet (He et al.) with option-A shortcuts.

ResNet-20 is ``ResNetCIFAR(blocks_per_stage=3, widths=(16, 32, 64))``: one
stem convolution, three stages of three basic blocks (two 3x3 convolutions
each) and a final linear classifier — 20 weight layers, exactly the paper's
Table I layout.  Option-A shortcuts (stride-2 subsampling plus zero channel
padding) are parameter-free, so the weight-layer count and per-layer
parameter counts match the paper.
"""

from __future__ import annotations

import numpy as np

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    Module,
    Sequential,
)
from repro.nn import functional as F
from repro.tensor import Tensor, ops


class BasicBlock(Module):
    """Two 3x3 convolutions with a parameter-free (option A) shortcut."""

    def __init__(
        self,
        in_planes: int,
        planes: int,
        stride: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        if (planes - in_planes) % 2:
            raise ValueError(
                "option-A shortcut needs an even channel increase, got "
                f"{in_planes} -> {planes}"
            )
        self.in_planes = in_planes
        self.planes = planes
        self.stride = stride
        self.conv1 = Conv2d(
            in_planes, planes, 3, stride=stride, padding=1, rng=rng
        )
        self.bn1 = BatchNorm2d(planes)
        self.conv2 = Conv2d(planes, planes, 3, stride=1, padding=1, rng=rng)
        self.bn2 = BatchNorm2d(planes)
        self._pad = (planes - in_planes) // 2

    def _shortcut(self, x: Tensor) -> Tensor:
        if self.stride == 1 and self._pad == 0:
            return x
        out = ops.subsample2d(x, self.stride) if self.stride != 1 else x
        if self._pad:
            out = ops.pad_channels(out, self._pad, self._pad)
        return out

    def forward(self, x: Tensor) -> Tensor:
        out = ops.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        out = ops.add(out, self._shortcut(x))
        return ops.relu(out)

    def forward_fast(self, x: np.ndarray) -> np.ndarray:
        out = F.relu(self.bn1.forward_fast(self.conv1.forward_fast(x)))
        out = self.bn2.forward_fast(self.conv2.forward_fast(out))
        shortcut = x
        if self.stride != 1:
            shortcut = F.subsample2d(shortcut, self.stride)
        if self._pad:
            shortcut = F.pad_channels(shortcut, self._pad, self._pad)
        return F.relu(out + shortcut)

    def capture(self, builder, x: int) -> int:
        out = builder.emit("relu", (self.bn1.capture(builder, self.conv1.capture(builder, x)),))
        out = self.bn2.capture(builder, self.conv2.capture(builder, out))
        shortcut = x
        if self.stride != 1:
            shortcut = builder.emit("subsample2d", (shortcut,), stride=self.stride)
        if self._pad:
            shortcut = builder.emit(
                "pad_channels", (shortcut,), before=self._pad, after=self._pad
            )
        # Operand order matters: `out + shortcut` and `shortcut + out`
        # differ bitwise once corrupted weights put NaN payloads in play.
        return builder.emit("relu", (builder.emit("add", (out, shortcut)),))


class _Stem(Module):
    """Stem: 3x3 convolution + batch norm + ReLU."""

    def __init__(self, out_planes: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.conv = Conv2d(3, out_planes, 3, stride=1, padding=1, rng=rng)
        self.bn = BatchNorm2d(out_planes)

    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(self.bn(self.conv(x)))

    def forward_fast(self, x: np.ndarray) -> np.ndarray:
        return F.relu(self.bn.forward_fast(self.conv.forward_fast(x)))

    def capture(self, builder, x: int) -> int:
        return builder.emit(
            "relu", (self.bn.capture(builder, self.conv.capture(builder, x)),)
        )


class _Head(Module):
    """Head: global average pooling + linear classifier."""

    def __init__(
        self, in_features: int, num_classes: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(in_features, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc(self.pool(x))

    def forward_fast(self, x: np.ndarray) -> np.ndarray:
        return self.fc.forward_fast(self.pool.forward_fast(x))

    def capture(self, builder, x: int) -> int:
        return self.fc.capture(builder, self.pool.capture(builder, x))


class ResNetCIFAR(Module):
    """CIFAR ResNet: stem, three stages of basic blocks, linear head.

    Weight-layer count is ``2 + 6 * blocks_per_stage`` (stem + two convs per
    block + classifier); ``blocks_per_stage=3`` gives ResNet-20.
    """

    def __init__(
        self,
        blocks_per_stage: int = 3,
        widths: tuple[int, int, int] = (16, 32, 64),
        num_classes: int = 10,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.blocks_per_stage = blocks_per_stage
        self.widths = widths
        self.num_classes = num_classes
        self.stem = _Stem(widths[0], rng)
        blocks: list[BasicBlock] = []
        in_planes = widths[0]
        for stage, width in enumerate(widths):
            for block_idx in range(blocks_per_stage):
                stride = 2 if stage > 0 and block_idx == 0 else 1
                blocks.append(BasicBlock(in_planes, width, stride, rng))
                in_planes = width
        self.blocks = Sequential(*blocks)
        self.head = _Head(widths[-1], num_classes, rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.blocks(self.stem(x)))

    def forward_fast(self, x: np.ndarray) -> np.ndarray:
        return self.head.forward_fast(
            self.blocks.forward_fast(self.stem.forward_fast(x))
        )

    def capture(self, builder, x: int) -> int:
        return self.head.capture(
            builder, self.blocks.capture(builder, self.stem.capture(builder, x))
        )

    def stage_modules(self) -> list[Module]:
        """Sequential stages for the prefix-cached FI inference engine."""
        return [self.stem, *self.blocks, self.head]


def resnet20(num_classes: int = 10, seed: int = 0) -> ResNetCIFAR:
    """Full-size CIFAR ResNet-20 (20 weight layers, 268,336 weights)."""
    return ResNetCIFAR(
        blocks_per_stage=3, widths=(16, 32, 64), num_classes=num_classes, seed=seed
    )


def resnet20_mini(num_classes: int = 10, seed: int = 0) -> ResNetCIFAR:
    """Width-reduced ResNet-20 (same 20-layer structure, ~17k weights)."""
    return ResNetCIFAR(
        blocks_per_stage=3, widths=(4, 8, 16), num_classes=num_classes, seed=seed
    )


def resnet14_mini(num_classes: int = 10, seed: int = 0) -> ResNetCIFAR:
    """Small ResNet-14 (two blocks per stage, 14 weight layers, ~4k weights).

    Deep enough that a network-wise campaign's per-layer shares are small —
    which is what makes the paper's "network-wise SFI blows past the 1%
    margin" observation visible — while exhaustive FI still runs in
    minutes.
    """
    return ResNetCIFAR(
        blocks_per_stage=2, widths=(4, 6, 8), num_classes=num_classes, seed=seed
    )


def resnet8_mini(num_classes: int = 10, seed: int = 0) -> ResNetCIFAR:
    """Tiny ResNet-8 (one block per stage, ~2k weights).

    Small enough for *exhaustive* fault injection on a laptop; this is the
    stand-in for the paper's 37-day exhaustive ResNet-20 campaign.
    """
    return ResNetCIFAR(
        blocks_per_stage=1, widths=(4, 6, 8), num_classes=num_classes, seed=seed
    )
