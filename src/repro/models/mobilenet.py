"""CIFAR-style MobileNetV2 (Sandler et al.).

The full-size configuration reproduces the paper's Table II case study
exactly: 54 weight layers (stem + 17 inverted residual blocks x 3
convolutions + final 1x1 convolution + classifier) totalling 2,203,584
conv+linear weights.  Every block carries an expansion 1x1 convolution, a
depthwise 3x3 convolution and a projection 1x1 convolution; the identity
residual is used only when the block keeps shape (stride 1, equal
channels), so no parameters hide in shortcuts.
"""

from __future__ import annotations

import numpy as np

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    Module,
)
from repro.nn import functional as F
from repro.tensor import Tensor, ops

#: (expansion, out_channels, num_blocks, stride) per group — the standard
#: CIFAR MobileNetV2 configuration (17 blocks).
FULL_CONFIG = (
    (1, 16, 1, 1),
    (6, 24, 2, 1),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)

#: A three-group tiny configuration for exhaustive-FI experiments.
MINI_CONFIG = (
    (1, 8, 1, 1),
    (2, 12, 1, 2),
    (2, 16, 1, 2),
)


class InvertedResidual(Module):
    """Expansion -> depthwise -> projection, with identity residual."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        expansion: int,
        stride: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        hidden = in_channels * expansion
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride
        self.use_residual = stride == 1 and in_channels == out_channels
        self.conv1 = Conv2d(in_channels, hidden, 1, rng=rng)
        self.bn1 = BatchNorm2d(hidden)
        self.conv2 = Conv2d(
            hidden, hidden, 3, stride=stride, padding=1, groups=hidden, rng=rng
        )
        self.bn2 = BatchNorm2d(hidden)
        self.conv3 = Conv2d(hidden, out_channels, 1, rng=rng)
        self.bn3 = BatchNorm2d(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        out = ops.relu6(self.bn1(self.conv1(x)))
        out = ops.relu6(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        if self.use_residual:
            out = ops.add(out, x)
        return out

    def forward_fast(self, x: np.ndarray) -> np.ndarray:
        out = F.relu6(self.bn1.forward_fast(self.conv1.forward_fast(x)))
        out = F.relu6(self.bn2.forward_fast(self.conv2.forward_fast(out)))
        out = self.bn3.forward_fast(self.conv3.forward_fast(out))
        if self.use_residual:
            out = out + x
        return out

    def capture(self, builder, x: int) -> int:
        out = builder.emit(
            "relu6", (self.bn1.capture(builder, self.conv1.capture(builder, x)),)
        )
        out = builder.emit(
            "relu6", (self.bn2.capture(builder, self.conv2.capture(builder, out)),)
        )
        out = self.bn3.capture(builder, self.conv3.capture(builder, out))
        if self.use_residual:
            out = builder.emit("add", (out, x))
        return out


class _Stem(Module):
    """Stem: 3x3 convolution + batch norm + ReLU6."""

    def __init__(self, out_channels: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.conv = Conv2d(3, out_channels, 3, stride=1, padding=1, rng=rng)
        self.bn = BatchNorm2d(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        return ops.relu6(self.bn(self.conv(x)))

    def forward_fast(self, x: np.ndarray) -> np.ndarray:
        return F.relu6(self.bn.forward_fast(self.conv.forward_fast(x)))

    def capture(self, builder, x: int) -> int:
        return builder.emit(
            "relu6", (self.bn.capture(builder, self.conv.capture(builder, x)),)
        )


class _Head(Module):
    """Final 1x1 convolution, pooling and classifier."""

    def __init__(
        self,
        in_channels: int,
        hidden: int,
        num_classes: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.conv = Conv2d(in_channels, hidden, 1, rng=rng)
        self.bn = BatchNorm2d(hidden)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(hidden, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = ops.relu6(self.bn(self.conv(x)))
        return self.fc(self.pool(out))

    def forward_fast(self, x: np.ndarray) -> np.ndarray:
        out = F.relu6(self.bn.forward_fast(self.conv.forward_fast(x)))
        return self.fc.forward_fast(self.pool.forward_fast(out))

    def capture(self, builder, x: int) -> int:
        out = builder.emit(
            "relu6", (self.bn.capture(builder, self.conv.capture(builder, x)),)
        )
        return self.fc.capture(builder, self.pool.capture(builder, out))


class MobileNetV2CIFAR(Module):
    """MobileNetV2 for 32x32 inputs."""

    def __init__(
        self,
        config: tuple[tuple[int, int, int, int], ...] = FULL_CONFIG,
        stem_channels: int = 32,
        head_channels: int = 1280,
        num_classes: int = 10,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config
        self.stem = _Stem(stem_channels, rng)
        blocks: list[InvertedResidual] = []
        in_channels = stem_channels
        for expansion, out_channels, num_blocks, stride in config:
            for block_idx in range(num_blocks):
                block_stride = stride if block_idx == 0 else 1
                blocks.append(
                    InvertedResidual(
                        in_channels, out_channels, expansion, block_stride, rng
                    )
                )
                in_channels = out_channels
        self._block_list = blocks
        for i, block in enumerate(blocks):
            self.add_module(f"block{i}", block)
        self.head = _Head(in_channels, head_channels, num_classes, rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        for block in self._block_list:
            out = block(out)
        return self.head(out)

    def forward_fast(self, x: np.ndarray) -> np.ndarray:
        out = self.stem.forward_fast(x)
        for block in self._block_list:
            out = block.forward_fast(out)
        return self.head.forward_fast(out)

    def capture(self, builder, x: int) -> int:
        out = self.stem.capture(builder, x)
        for block in self._block_list:
            out = block.capture(builder, out)
        return self.head.capture(builder, out)

    def stage_modules(self) -> list[Module]:
        """Sequential stages for the prefix-cached FI inference engine."""
        return [self.stem, *self._block_list, self.head]


def mobilenetv2(num_classes: int = 10, seed: int = 0) -> MobileNetV2CIFAR:
    """Full-size CIFAR MobileNetV2 (54 weight layers, 2,203,584 weights)."""
    return MobileNetV2CIFAR(
        config=FULL_CONFIG,
        stem_channels=32,
        head_channels=1280,
        num_classes=num_classes,
        seed=seed,
    )


def mobilenetv2_mini(num_classes: int = 10, seed: int = 0) -> MobileNetV2CIFAR:
    """Tiny MobileNetV2 (3 blocks, ~3k weights) for exhaustive FI."""
    return MobileNetV2CIFAR(
        config=MINI_CONFIG,
        stem_channels=6,
        head_channels=32,
        num_classes=num_classes,
        seed=seed,
    )
