"""Model zoo: the paper's CNN topologies and width-reduced variants.

Full-size topologies match the paper's case study exactly in weight-layer
structure:

- :func:`resnet20` — CIFAR ResNet-20, 20 weight layers, 268,336 conv+linear
  weights (the paper reports 268,346; its layer 11 carries a +10 anomaly —
  see EXPERIMENTS.md).
- :func:`mobilenetv2` — CIFAR MobileNetV2, 54 weight layers, 2,203,584
  conv+linear weights — matching the paper's Table II total exactly.

The ``*_mini`` variants keep the same topology family (residual blocks,
inverted residuals with depthwise convolutions) at a few thousand weights so
that *exhaustive* fault injection — the paper's ground truth — runs in
minutes on a laptop instead of the paper's 37-54 GPU-days.
"""

from repro.models.resnet import (
    BasicBlock,
    ResNetCIFAR,
    resnet8_mini,
    resnet14_mini,
    resnet20,
    resnet20_mini,
)
from repro.models.mobilenet import (
    InvertedResidual,
    MobileNetV2CIFAR,
    mobilenetv2,
    mobilenetv2_mini,
)
from repro.models.vgg import VGGCIFAR, vgg_mini
from repro.models.registry import MODELS, create_model, load_pretrained, pretrained_path

__all__ = [
    "BasicBlock",
    "ResNetCIFAR",
    "resnet8_mini",
    "resnet14_mini",
    "resnet20",
    "resnet20_mini",
    "InvertedResidual",
    "MobileNetV2CIFAR",
    "mobilenetv2",
    "mobilenetv2_mini",
    "VGGCIFAR",
    "vgg_mini",
    "MODELS",
    "create_model",
    "load_pretrained",
    "pretrained_path",
]
