"""Generic Array-API backend: portable kernels over any conforming library.

Written against the Array API standard namespace (``matmul``,
``permute_dims``, ``concat``, ...), not numpy: any library exposing the
standard — ``array_api_strict``, CuPy, a torch compat layer — can slot
in.  Discovery prefers ``array_api_strict`` when installed, then falls
back to numpy's own Array-API namespace (numpy ≥ 2 advertises
``__array_api_version__``), and raises
:class:`~repro.backends.base.BackendUnavailableError` when neither
exists — callers degrade gracefully (``available_backends`` simply omits
it).

These kernels avoid stride tricks and in-place workspace writes, so
their numerics differ from the reference: matmul-family ops are declared
``"relative"`` tolerance and ``"never"`` batch-invariant (claiming
non-invariance is always safe — only a claimed invariance is
falsifiable, and the op_db suite attacks exactly those claims).
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend, BackendUnavailableError
from repro.tensor.im2col import conv_output_size

#: Names the kernels below require from the namespace; probed at init so
#: a partially conforming library fails loudly instead of mid-campaign.
_REQUIRED_NAMES = (
    "asarray",
    "clip",
    "concat",
    "matmul",
    "maximum",
    "mean",
    "permute_dims",
    "reshape",
    "stack",
    "zeros",
)


def _discover_namespace():
    """Locate an Array-API namespace, preferring a dedicated library."""
    try:
        import array_api_strict
    except ImportError:
        pass
    else:
        return array_api_strict, "array_api_strict " + getattr(
            array_api_strict, "__version__", "0"
        )
    if getattr(np, "__array_api_version__", None):
        return np, "numpy " + np.__version__
    raise BackendUnavailableError(
        "no Array-API-compatible library available: install "
        "array_api_strict or numpy >= 2"
    )


class ArrayApiBackend(Backend):
    """Portable kernels over a discovered Array-API namespace."""

    name = "array_api"
    OP_TOLERANCE = {
        "conv2d": "relative",
        "conv2d_bn": "relative",
        "batchnorm2d": "relative",
        "linear": "relative",
        "relu": "bitexact",
        "relu6": "bitexact",
        "avg_pool2d": "relative",
        "global_avg_pool2d": "relative",
        "flatten": "bitexact",
        "add": "bitexact",
        "subsample2d": "bitexact",
        "pad_channels": "bitexact",
        "gemm": "relative",
        "im2col": "bitexact",
    }
    OP_INVARIANCE = {
        "conv2d": "never",
        "conv2d_bn": "never",
        "batchnorm2d": "always",
        "linear": "never",
        "relu": "always",
        "relu6": "always",
        "avg_pool2d": "always",
        "global_avg_pool2d": "always",
        "flatten": "always",
        "add": "always",
        "subsample2d": "always",
        "pad_channels": "always",
        "gemm": "never",
        "im2col": "always",
    }

    def __init__(self) -> None:
        xp, version = _discover_namespace()
        missing = sorted(
            name for name in _REQUIRED_NAMES if not hasattr(xp, name)
        )
        if missing:
            raise BackendUnavailableError(
                f"Array-API namespace {version} lacks required name(s): "
                + ", ".join(missing)
            )
        self.xp = xp
        self.version = version
        super().__init__()

    # -- array plumbing ----------------------------------------------------

    def _from_numpy(self, a: np.ndarray):
        return self.xp.asarray(np.ascontiguousarray(a, dtype=np.float32))

    def _to_numpy(self, a) -> np.ndarray:
        try:
            out = np.asarray(a)
        except TypeError:
            out = np.from_dlpack(a)
        return np.ascontiguousarray(out, dtype=np.float32)

    def _pad2d(self, x, padding: int):
        """Zero-pad trailing spatial axes via concat (no pad() in the API)."""
        if padding <= 0:
            return x
        xp = self.xp
        n, c, h, w = x.shape
        wide = xp.zeros((n, c, h, padding), dtype=x.dtype)
        x = xp.concat((wide, x, wide), axis=3)
        tall = xp.zeros((n, c, padding, w + 2 * padding), dtype=x.dtype)
        return xp.concat((tall, x, tall), axis=2)

    def _im2col_xp(self, x, kh, kw, stride, padding):
        """Namespace-native im2col via stacked strided slices.

        kh*kw slices instead of a sliding-window view: the Array API has
        no stride tricks, and kernel windows are tiny (≤ 9 here).
        """
        xp = self.xp
        n, c, h, w = x.shape
        out_h = conv_output_size(h, kh, stride, padding)
        out_w = conv_output_size(w, kw, stride, padding)
        x = self._pad2d(x, padding)
        patches = [
            x[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride]
            for i in range(kh)
            for j in range(kw)
        ]
        # (N, C, kh*kw, out_h, out_w) -> (N, C*kh*kw, out_h*out_w)
        cols = xp.stack(patches, axis=2)
        return xp.reshape(cols, (n, c * kh * kw, out_h * out_w))

    # -- kernels -----------------------------------------------------------

    def conv2d(self, x, weight, bias=None, *, stride=1, padding=0, groups=1,
               cols_out=None):
        xp = self.xp
        n, c, h, w = x.shape
        oc, cg, kh, kw = weight.shape
        out_h = conv_output_size(h, kh, stride, padding)
        out_w = conv_output_size(w, kw, stride, padding)
        p = out_h * out_w
        xa = self._from_numpy(x)
        cols = self._im2col_xp(xa, kh, kw, stride, padding)
        wa = self._from_numpy(weight.reshape(oc, cg * kh * kw))
        if groups == 1:
            out = xp.matmul(wa, cols)
        else:
            k = cg * kh * kw
            ocg = oc // groups
            cols_g = xp.reshape(cols, (n, groups, k, p))
            parts = [
                xp.matmul(wa[g * ocg : (g + 1) * ocg, :], cols_g[:, g, :, :])
                for g in range(groups)
            ]
            out = xp.concat(parts, axis=1)
        out = xp.reshape(out, (n, oc, out_h, out_w))
        if bias is not None:
            out = out + xp.reshape(self._from_numpy(bias), (1, oc, 1, 1))
        return self._to_numpy(out)

    def batchnorm2d(self, x, gamma, beta, running_mean, running_var, *,
                    eps=1e-5):
        xp = self.xp
        c = x.shape[1]
        scale = (gamma / np.sqrt(running_var + eps)).astype(np.float32)
        shift = (beta - running_mean * scale).astype(np.float32)
        out = self._from_numpy(x) * xp.reshape(
            self._from_numpy(scale), (1, c, 1, 1)
        ) + xp.reshape(self._from_numpy(shift), (1, c, 1, 1))
        return self._to_numpy(out)

    def linear(self, x, weight, bias=None):
        xp = self.xp
        out = xp.matmul(
            self._from_numpy(x),
            xp.permute_dims(self._from_numpy(weight), (1, 0)),
        )
        if bias is not None:
            out = out + self._from_numpy(bias)
        return self._to_numpy(out)

    def relu(self, x):
        xp = self.xp
        xa = self._from_numpy(x)
        return self._to_numpy(xp.maximum(xa, xp.asarray(0.0, dtype=xa.dtype)))

    def relu6(self, x):
        xp = self.xp
        return self._to_numpy(xp.clip(self._from_numpy(x), 0.0, 6.0))

    def avg_pool2d(self, x, kernel):
        xp = self.xp
        n, c, h, w = x.shape
        if h % kernel or w % kernel:
            raise ValueError(
                f"avg_pool2d kernel {kernel} must divide spatial dims ({h}x{w})"
            )
        view = xp.reshape(
            self._from_numpy(x),
            (n, c, h // kernel, kernel, w // kernel, kernel),
        )
        return self._to_numpy(xp.mean(view, axis=(3, 5)))

    def global_avg_pool2d(self, x):
        return self._to_numpy(self.xp.mean(self._from_numpy(x), axis=(2, 3)))

    def flatten(self, x):
        xa = self._from_numpy(x)
        return self._to_numpy(self.xp.reshape(xa, (xa.shape[0], -1)))

    def add(self, a, b):
        return self._to_numpy(self._from_numpy(a) + self._from_numpy(b))

    def subsample2d(self, x, stride):
        return self._to_numpy(self._from_numpy(x)[:, :, ::stride, ::stride])

    def pad_channels(self, x, before, after):
        xp = self.xp
        xa = self._from_numpy(x)
        n, c, h, w = xa.shape
        parts = []
        if before:
            parts.append(xp.zeros((n, before, h, w), dtype=xa.dtype))
        parts.append(xa)
        if after:
            parts.append(xp.zeros((n, after, h, w), dtype=xa.dtype))
        return self._to_numpy(xp.concat(parts, axis=1))

    def gemm(self, a, b):
        return self._to_numpy(
            self.xp.matmul(self._from_numpy(a), self._from_numpy(b))
        )

    def im2col(self, x, kh, kw, stride, padding, out=None):
        # The Array API has no in-place workspace writes; *out* is
        # ignored (allocation behaviour only — values are identical).
        cols = self._to_numpy(
            self._im2col_xp(self._from_numpy(x), kh, kw, stride, padding)
        )
        if out is not None:
            out[...] = cols
            return out
        return cols
