"""Backend registry and selection.

Selection precedence mirrors ``resolve_workers``: an explicit
``backend=`` argument (name or :class:`Backend` instance) wins, then the
``REPRO_BACKEND`` environment variable, then the ``numpy`` reference
backend.  Construction is cached per name — backends are stateless
kernel tables, so one instance serves every plan in the process.
"""

from __future__ import annotations

import os

from repro.backends.base import (
    BACKEND_OP_KINDS,
    BACKEND_PRIMITIVES,
    Backend,
    BackendUnavailableError,
)
from repro.backends.numpy_backend import NumpyBackend

#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV = "REPRO_BACKEND"

_REGISTRY: dict[str, type[Backend]] = {}
_INSTANCES: dict[str, Backend] = {}


def register_backend(name: str, cls: type[Backend]) -> None:
    """Register a backend class under *name* (test/plugin hook)."""
    _REGISTRY[name] = cls
    _INSTANCES.pop(name, None)


def get_backend(name: str) -> Backend:
    """Construct (or return the cached) backend registered as *name*.

    Raises :class:`BackendUnavailableError` for unknown names and
    propagates it from backends whose library is not installed.
    """
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    cls = _REGISTRY.get(name)
    if cls is None:
        raise BackendUnavailableError(
            f"unknown backend {name!r} (registered: "
            + ", ".join(sorted(_REGISTRY))
            + ")"
        )
    instance = cls()
    _INSTANCES[name] = instance
    return instance


def available_backends() -> list[str]:
    """Registered backend names that construct successfully, sorted."""
    names = []
    for name in sorted(_REGISTRY):
        try:
            get_backend(name)
        except BackendUnavailableError:
            continue
        names.append(name)
    return names


def resolve_backend(backend: Backend | str | None = None) -> Backend:
    """Resolve a backend: explicit argument, then env var, then numpy.

    Accepts a :class:`Backend` instance (passed through), a registered
    name, or ``None`` — which consults ``REPRO_BACKEND`` and defaults to
    the reference backend.
    """
    if isinstance(backend, Backend):
        return backend
    if backend is None:
        backend = os.environ.get(BACKEND_ENV, "").strip() or "numpy"
    return get_backend(backend)


def backend_attestation(backend: Backend | str | None = None) -> dict:
    """The resolved backend's attestation record (see ``Backend.attestation``)."""
    return resolve_backend(backend).attestation()


def _register_builtin() -> None:
    register_backend("numpy", NumpyBackend)
    # Registering the class is free: the Array-API library probe runs at
    # construction, so unavailability surfaces as a
    # BackendUnavailableError from get_backend(), never at import time.
    from repro.backends.array_api import ArrayApiBackend

    register_backend("array_api", ArrayApiBackend)


_register_builtin()

__all__ = [
    "BACKEND_ENV",
    "BACKEND_OP_KINDS",
    "BACKEND_PRIMITIVES",
    "Backend",
    "BackendUnavailableError",
    "NumpyBackend",
    "available_backends",
    "backend_attestation",
    "get_backend",
    "register_backend",
    "resolve_backend",
]
