"""The backend kernel interface: "how to compute" behind the plan IR.

An :class:`~repro.runtime.plan.ExecutionPlan` records *what* to compute
(ops over buffer slots); a :class:`Backend` supplies *how* — one kernel
per op kind, plus the ``gemm``/``im2col`` primitives the engines call
directly.  The reference :class:`~repro.backends.numpy_backend.NumpyBackend`
delegates to the exact :mod:`repro.nn.functional` routines the module
engine's ``forward_fast`` executes, so every engine shares one set of
kernels; alternative backends (Array API, GPU libraries) implement the
same interface with different numerics.

Because the paper's statistical-FI methodology depends on knowing when
outcomes are bit-identical, a backend must *declare* two per-op traits,
and the op_db conformance suite (:mod:`repro.check.opdb`) empirically
attacks both declarations:

- **tolerance class** — ``"bitexact"`` (bitwise equal to the reference
  kernel) or ``"relative"`` (floating-point close, not bitwise);
- **batch-invariance class** — ``"always"`` (bit-stable under stacking
  variants along the batch axis), ``"never"`` (evaluated per variant),
  or ``"kernel"`` (resolved per op from the
  :data:`~repro.check.kernels.KERNEL_TABLE` dispatch predicate, as the
  reference convolution paths require).

:meth:`Backend.attestation` serialises these traits with the backend
name and version; :func:`repro.check.plan.plan_fingerprint` folds the
attestation into the plan fingerprint of any non-reference plan, which
is how ``repro.dist`` merges refuse cross-backend mixing unless a
verification pass declared the fingerprints compatible.
"""

from __future__ import annotations

import numpy as np


class BackendUnavailableError(RuntimeError):
    """The requested backend is unknown or its library is not installed."""


#: Op kinds every backend must dispatch (the kernel-table kinds).
BACKEND_OP_KINDS = (
    "conv2d",
    "conv2d_bn",
    "batchnorm2d",
    "linear",
    "relu",
    "relu6",
    "avg_pool2d",
    "global_avg_pool2d",
    "flatten",
    "add",
    "subsample2d",
    "pad_channels",
)

#: Array-level primitives the engines call outside plan dispatch.
BACKEND_PRIMITIVES = ("gemm", "im2col")


class Backend:
    """Abstract kernel backend: array-level kernels + op-level dispatch.

    Subclasses implement the array-level kernels (:meth:`conv2d`,
    :meth:`linear`, ...) and declare ``OP_TOLERANCE`` / ``OP_INVARIANCE``
    for every kind in :data:`BACKEND_OP_KINDS` and
    :data:`BACKEND_PRIMITIVES`.  The op-level runners (unpacking an
    :class:`~repro.runtime.plan.OpSpec`'s module and params) are shared
    here so all backends interpret the plan IR identically.
    """

    name: str = "abstract"
    version: str = "0"
    #: True only for the numpy reference backend whose kernels are the
    #: very functions ``forward_fast`` executes (the bit-exactness
    #: anchor); reference-only machinery (channel-sparse evaluation,
    #: vectorized certification, the module engine) gates on this.
    is_reference: bool = False
    OP_TOLERANCE: dict[str, str] = {}
    OP_INVARIANCE: dict[str, str] = {}

    def __init__(self) -> None:
        missing = [
            kind
            for kind in (*BACKEND_OP_KINDS, *BACKEND_PRIMITIVES)
            if kind not in self.OP_TOLERANCE or kind not in self.OP_INVARIANCE
        ]
        if missing:
            raise TypeError(
                f"backend {self.name!r} declares no tolerance/invariance "
                f"for op kind(s) {missing}"
            )
        self._dispatch = {
            "conv2d": self._run_conv2d,
            "conv2d_bn": self._run_conv2d_bn,
            "batchnorm2d": self._run_batchnorm2d,
            "linear": self._run_linear,
            "relu": self._run_relu,
            "relu6": self._run_relu6,
            "avg_pool2d": self._run_avg_pool2d,
            "global_avg_pool2d": self._run_global_avg_pool2d,
            "flatten": self._run_flatten,
            "add": self._run_add,
            "subsample2d": self._run_subsample2d,
            "pad_channels": self._run_pad_channels,
        }

    # -- op-level dispatch (shared IR interpretation) ----------------------

    def run_op(self, op, inputs, *, workspaces=None):
        """Execute one plan op on concrete input arrays."""
        return self._dispatch[op.kind](op, *inputs, workspaces=workspaces)

    def op_kinds(self) -> frozenset:
        """Op kinds this backend can dispatch."""
        return frozenset(self._dispatch)

    def _run_conv2d(self, op, x, workspaces=None):
        m = op.module
        cols_out = None
        if workspaces is not None:
            cols_out = self.conv_workspace(workspaces, op, m, x)
        return self.conv2d(
            x,
            m.weight.data,
            None if m.bias is None else m.bias.data,
            stride=m.stride,
            padding=m.padding,
            groups=m.groups,
            cols_out=cols_out,
        )

    def _run_conv2d_bn(self, op, x, workspaces=None):
        """Fused conv + BN: fold the BN affine into the conv weights.

        Numeric-changing (a folded multiply is not bitwise a conv
        followed by a BN), so this kind only appears in fused plans.
        The fold itself is tiny weight-space arithmetic done in numpy
        regardless of backend; the convolution runs on the backend.
        """
        conv, bn = op.module, op.params["bn"]
        scale = (bn.weight.data / np.sqrt(bn.running_var + bn.eps)).astype(
            np.float32
        )
        shift = (bn.bias.data - bn.running_mean * scale).astype(np.float32)
        weight = conv.weight.data * scale.reshape(-1, 1, 1, 1)
        bias = shift if conv.bias is None else shift + scale * conv.bias.data
        cols_out = None
        if workspaces is not None:
            cols_out = self.conv_workspace(workspaces, op, conv, x)
        return self.conv2d(
            x,
            weight,
            bias,
            stride=conv.stride,
            padding=conv.padding,
            groups=conv.groups,
            cols_out=cols_out,
        )

    def _run_batchnorm2d(self, op, x, workspaces=None):
        m = op.module
        return self.batchnorm2d(
            x, m.weight.data, m.bias.data, m.running_mean, m.running_var,
            eps=m.eps,
        )

    def _run_linear(self, op, x, workspaces=None):
        m = op.module
        return self.linear(
            x, m.weight.data, None if m.bias is None else m.bias.data
        )

    def _run_relu(self, op, x, workspaces=None):
        return self.relu(x)

    def _run_relu6(self, op, x, workspaces=None):
        return self.relu6(x)

    def _run_avg_pool2d(self, op, x, workspaces=None):
        return self.avg_pool2d(x, op.module.kernel)

    def _run_global_avg_pool2d(self, op, x, workspaces=None):
        return self.global_avg_pool2d(x)

    def _run_flatten(self, op, x, workspaces=None):
        return self.flatten(x)

    def _run_add(self, op, a, b, workspaces=None):
        return self.add(a, b)

    def _run_subsample2d(self, op, x, workspaces=None):
        return self.subsample2d(x, op.params["stride"])

    def _run_pad_channels(self, op, x, workspaces=None):
        return self.pad_channels(x, op.params["before"], op.params["after"])

    def conv_workspace(self, workspaces: dict, op, m, x):
        """Preallocated im2col column buffer for (op, batch), or None.

        Only backends that materialise im2col columns as numpy arrays
        (the reference backend's fused plans) benefit; the default is no
        workspace, which is always value-correct.
        """
        return None

    # -- array-level kernels (backend-specific numerics) -------------------

    def conv2d(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: np.ndarray | None = None,
        *,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        cols_out: np.ndarray | None = None,
    ) -> np.ndarray:
        raise NotImplementedError

    def batchnorm2d(
        self,
        x: np.ndarray,
        gamma: np.ndarray,
        beta: np.ndarray,
        running_mean: np.ndarray,
        running_var: np.ndarray,
        *,
        eps: float = 1e-5,
    ) -> np.ndarray:
        raise NotImplementedError

    def linear(
        self, x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None
    ) -> np.ndarray:
        raise NotImplementedError

    def relu(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def relu6(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def avg_pool2d(self, x: np.ndarray, kernel: int) -> np.ndarray:
        raise NotImplementedError

    def global_avg_pool2d(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def flatten(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def subsample2d(self, x: np.ndarray, stride: int) -> np.ndarray:
        raise NotImplementedError

    def pad_channels(self, x: np.ndarray, before: int, after: int) -> np.ndarray:
        raise NotImplementedError

    def gemm(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product ``a @ b`` (batched when either operand is 3-D)."""
        raise NotImplementedError

    def im2col(
        self,
        x: np.ndarray,
        kh: int,
        kw: int,
        stride: int,
        padding: int,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        raise NotImplementedError

    # -- declared traits ---------------------------------------------------

    def batch_invariant(self, op) -> bool:
        """Whether this backend's kernel for *op* is batch-invariant.

        ``"kernel"``-class kinds resolve through the central
        :data:`~repro.check.kernels.KERNEL_TABLE` predicate (the single
        source of truth for the reference dispatch rules).
        """
        invariance = self.OP_INVARIANCE[op.kind]
        if invariance == "always":
            return True
        if invariance == "never":
            return False
        # Lazy import: repro.check reasons about the runtime stack and
        # must stay importable without this module being loaded first.
        from repro.check.kernels import KERNEL_TABLE

        return bool(KERNEL_TABLE[op.kind].batch_invariant(op))

    def tolerance(self, kind: str) -> str:
        """Declared tolerance class vs the reference backend for *kind*."""
        return self.OP_TOLERANCE[kind]

    def attestation(self) -> dict:
        """Deterministic identity record folded into plan fingerprints.

        Name, version, and the per-op trait declarations — exactly the
        facts a distributed merge must agree on before mixing shards, so
        two backends differing in any of them fingerprint differently.
        """
        return {
            "name": self.name,
            "version": self.version,
            "ops": {
                kind: {
                    "invariance": self.OP_INVARIANCE[kind],
                    "tolerance": self.OP_TOLERANCE[kind],
                }
                for kind in sorted(self.OP_INVARIANCE)
            },
        }

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} {self.version}>"
