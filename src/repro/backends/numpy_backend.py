"""The numpy reference backend — the repo's bit-exactness anchor.

Every kernel here *is* the :mod:`repro.nn.functional` routine that the
module engine's ``forward_fast`` executes (same function objects, same
argument order), so an unfused plan replayed through this backend is
bitwise identical to the module tree by construction.  All other
backends are measured against this one by the op_db conformance suite.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend
from repro.nn import functional as F
from repro.tensor.im2col import conv_output_size
from repro.tensor.im2col import im2col as _im2col


class NumpyBackend(Backend):
    """Reference kernels: direct delegation to ``repro.nn.functional``."""

    name = "numpy"
    version = np.__version__
    is_reference = True
    # Tolerance is declared vs the reference — trivially bitexact here.
    OP_TOLERANCE = {
        "conv2d": "bitexact",
        "conv2d_bn": "bitexact",
        "batchnorm2d": "bitexact",
        "linear": "bitexact",
        "relu": "bitexact",
        "relu6": "bitexact",
        "avg_pool2d": "bitexact",
        "global_avg_pool2d": "bitexact",
        "flatten": "bitexact",
        "add": "bitexact",
        "subsample2d": "bitexact",
        "pad_channels": "bitexact",
        "gemm": "bitexact",
        "im2col": "bitexact",
    }
    # Elementwise ops, pooling reductions and the 3-D matmul convolution
    # paths are bit-stable under batch stacking; the 2-D GEMM behind
    # F.linear and the einsum depthwise/grouped convolution paths are
    # not (BLAS blocking / contraction strategy change with the batch
    # extent).  Convolutions dispatch per op shape, so they defer to the
    # KERNEL_TABLE predicate.
    OP_INVARIANCE = {
        "conv2d": "kernel",
        "conv2d_bn": "kernel",
        "batchnorm2d": "always",
        "linear": "never",
        "relu": "always",
        "relu6": "always",
        "avg_pool2d": "always",
        "global_avg_pool2d": "always",
        "flatten": "always",
        "add": "always",
        "subsample2d": "always",
        "pad_channels": "always",
        "gemm": "never",
        "im2col": "always",
    }

    def conv2d(self, x, weight, bias=None, *, stride=1, padding=0, groups=1,
               cols_out=None):
        return F.conv2d(
            x, weight, bias,
            stride=stride, padding=padding, groups=groups, cols_out=cols_out,
        )

    def batchnorm2d(self, x, gamma, beta, running_mean, running_var, *,
                    eps=1e-5):
        return F.batchnorm2d(x, gamma, beta, running_mean, running_var, eps=eps)

    def linear(self, x, weight, bias=None):
        return F.linear(x, weight, bias)

    def relu(self, x):
        return F.relu(x)

    def relu6(self, x):
        return F.relu6(x)

    def avg_pool2d(self, x, kernel):
        return F.avg_pool2d(x, kernel)

    def global_avg_pool2d(self, x):
        return F.global_avg_pool2d(x)

    def flatten(self, x):
        return x.reshape(x.shape[0], -1)

    def add(self, a, b):
        return a + b

    def subsample2d(self, x, stride):
        return F.subsample2d(x, stride)

    def pad_channels(self, x, before, after):
        return F.pad_channels(x, before, after)

    def gemm(self, a, b):
        return a @ b

    def im2col(self, x, kh, kw, stride, padding, out=None):
        return _im2col(x, kh, kw, stride, padding, out=out)

    def conv_workspace(self, workspaces, op, m, x):
        """Preallocated im2col column buffer for (op, batch) — fused plans."""
        k = m.kernel_size
        if k == 1 and m.padding == 0 and m.groups == 1:
            return None  # pointwise path never materialises columns
        if m.groups == m.in_channels and m.out_channels == m.in_channels:
            return None  # depthwise path never materialises columns
        n, c, h, w = x.shape
        p = conv_output_size(h, k, m.stride, m.padding) * conv_output_size(
            w, k, m.stride, m.padding
        )
        key = (op.index, n)
        buf = workspaces.get(key)
        shape = (n, c * k * k, p)
        if buf is None or buf.shape != shape:
            buf = np.empty(shape, dtype=np.float32)
            workspaces[key] = buf
        return buf
