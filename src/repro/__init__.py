"""repro — Statistical Fault Injection for CNN reliability assessment.

A from-scratch reproduction of "Assessing Convolutional Neural Networks
Reliability through Statistical Fault Injections" (Ruospo et al., DATE 2023).

The package provides:

- :mod:`repro.ieee754` — vectorised IEEE-754 bit manipulation (the fault
  substrate: stuck-at and bit-flip corruption of floating-point weights).
- :mod:`repro.tensor` — a small tape-based autograd engine on numpy.
- :mod:`repro.nn` — neural-network modules built on the autograd engine.
- :mod:`repro.models` — the paper's CNN topologies (ResNet-20, MobileNetV2
  for CIFAR-shaped inputs) plus width-reduced "mini" variants used for
  exhaustive-vs-statistical validation.
- :mod:`repro.data` — SynthCIFAR, a deterministic synthetic 10-class
  image-classification dataset standing in for CIFAR-10.
- :mod:`repro.train` — SGD training utilities for the model zoo.
- :mod:`repro.faults` — fault models, fault-space enumeration, the weight
  fault injector and a prefix-cached fast inference engine.
- :mod:`repro.stats` — finite-population sample-size math (paper Eq. 1),
  error margins, confidence intervals, allocation and homogeneity checks.
- :mod:`repro.sfi` — the four statistical fault-injection campaign planners
  (network-wise, layer-wise, data-unaware, data-aware), the data-aware
  p(i) pipeline (paper Eq. 4-5), samplers, runners and validation.
- :mod:`repro.analysis` — reporting: per-layer/per-bit criticality tables,
  method comparisons, ASCII rendering of the paper's tables and figures.

Quickstart::

    from repro.models import resnet20_mini
    from repro.data import SynthCIFAR
    from repro.sfi import DataAwareSFI, CampaignRunner

    model = resnet20_mini(pretrained=True)
    data = SynthCIFAR(split="test", size=256)
    plan = DataAwareSFI(error_margin=0.01, confidence=0.99).plan(model)
    result = CampaignRunner(model, data).run(plan, seed=0)
    print(result.summary())
"""

__version__ = "1.0.0"

__all__ = [
    "ieee754",
    "tensor",
    "nn",
    "models",
    "data",
    "train",
    "faults",
    "stats",
    "sfi",
    "analysis",
]
