"""Compiled inference path: execution plans and the plan engine.

``repro.runtime`` lowers a model's ``forward_fast`` into a flat,
forward-only :class:`ExecutionPlan` of primitive ops over explicit
buffer slots (:func:`capture_plan`), and classifies weight faults over
it with :class:`PlanEngine` — op-granular prefix caching plus batched
same-layer fault evaluation, bit-identical to the module engine unless
numeric-changing fusions are explicitly enabled (:func:`fuse_plan`).
"""

from repro.runtime.engine import (
    DEFAULT_BATCH_SIZE,
    PlanEngine,
    create_engine,
)
from repro.runtime.plan import (
    FUSED_OP_KINDS,
    OP_KINDS,
    ExecutionPlan,
    OpSpec,
    PlanBuilder,
    capture_plan,
    fuse_plan,
)
from repro.runtime.vectorized import (
    DEFAULT_OP_BUDGET,
    DEFAULT_VEC_BATCH_SIZE,
    VectorizedPlanEngine,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_OP_BUDGET",
    "DEFAULT_VEC_BATCH_SIZE",
    "ExecutionPlan",
    "FUSED_OP_KINDS",
    "OP_KINDS",
    "OpSpec",
    "PlanBuilder",
    "PlanEngine",
    "VectorizedPlanEngine",
    "capture_plan",
    "create_engine",
    "fuse_plan",
]
