"""Execution plans: a model's forward pass captured as a flat op sequence.

The module tree is great for training and for reading, but the fault
campaigns' hot loop wants something flatter: a forward-only list of
primitive ops (conv2d / bn / relu / pool / linear / add / reshape) whose
inputs and outputs are explicit *buffer slots*.  With that in hand the
engine can

- cache every intermediate activation once (op-granular prefix caching:
  a fault in layer *l* re-executes only the ops that transitively depend
  on *l*'s output, not a whole coarse stage), and
- evaluate K same-layer faults per tail pass by stacking the K faulty
  activation sets along the batch axis.

The contract that makes this safe is **bit-exactness**: an unfused plan
replays the *same* numpy calls, with the same arguments and operand
order, as ``forward_fast`` — so plan-engine outcome tables are
bit-identical to the module engine's.  Numeric-changing rewrites
(BN-folding, workspace reuse) live behind :func:`fuse_plan` and are
opt-in; a fused engine carries a different fingerprint so distributed
merges refuse to mix the two.

Batch invariance
----------------
Stacking K activation variants along the batch axis is only bit-exact
for kernels whose per-sample arithmetic is independent of the batch
extent.  Elementwise ops, pooling reductions and the 3-D ``matmul``
convolution paths qualify; the 2-D GEMM behind :func:`F.linear` and the
``einsum`` depthwise/grouped convolution paths do **not** (BLAS blocking
changes with the batch dimension).  Each :class:`OpSpec` records this as
``batch_invariant``; the engine runs non-invariant tail ops once per
variant chunk — every chunk call is then shaped exactly like the
unbatched call, so bit-exactness survives batching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import SimpleNamespace

import numpy as np

from repro.backends import Backend, get_backend, resolve_backend
from repro.nn.module import Module

#: Op kinds an unfused capture may emit.
OP_KINDS = frozenset(
    {
        "conv2d",
        "batchnorm2d",
        "relu",
        "relu6",
        "linear",
        "avg_pool2d",
        "global_avg_pool2d",
        "flatten",
        "add",
        "subsample2d",
        "pad_channels",
    }
)

#: Op kinds introduced by :func:`fuse_plan` (numeric-changing).
FUSED_OP_KINDS = frozenset({"conv2d_bn"})


def _batch_invariant(kind: str, module) -> bool:
    """Reference-backend batch invariance for *kind*, from the kernel table.

    :data:`repro.check.kernels.KERNEL_TABLE` is the single source of
    truth for which reference dispatch paths are bit-stable under batch
    stacking (pointwise/im2col matmul convs are; depthwise/grouped
    einsum and the 2-D linear GEMM are not).  Capture consults it here;
    the verifier's P120 then re-checks the recorded flags against the
    same table, catching post-capture drift in fused or hand-built
    plans.
    """
    # Lazy import: repro.check.plan reasons *about* this module.
    from repro.check.kernels import KERNEL_TABLE

    predicate = KERNEL_TABLE[kind].batch_invariant
    return bool(predicate(SimpleNamespace(kind=kind, module=module, params={})))


@dataclass
class OpSpec:
    """One primitive op in an :class:`ExecutionPlan`.

    ``module`` (when set) is the live :class:`~repro.nn.Module` whose
    parameters the op reads *at execution time* — the fault injector
    corrupts weights in place, so the plan sees injected faults without
    any re-capture.
    """

    index: int
    kind: str
    inputs: tuple[int, ...]
    output: int
    module: Module | None = None
    params: dict = field(default_factory=dict)
    batch_invariant: bool = True

    def __repr__(self) -> str:  # compact: plans are printed in tests/docs
        ins = ",".join(str(s) for s in self.inputs)
        return f"%{self.output} = {self.kind}({ins})"


class PlanBuilder:
    """Accumulates ops during :meth:`Module.capture` lowering.

    Modules call :meth:`emit` with their op kind and input slots and get
    back the output slot — mirroring how ``forward_fast`` threads
    ndarrays, but recording the dataflow instead of executing it.
    """

    def __init__(self) -> None:
        self.ops: list[OpSpec] = []
        self.input_slot = 0
        self._next_slot = 1

    def emit(
        self, kind: str, inputs: tuple[int, ...], *, module: Module | None = None, **params
    ) -> int:
        """Append one op consuming *inputs*; returns its output slot."""
        if kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {kind!r}")
        for slot in inputs:
            if not 0 <= slot < self._next_slot:
                raise ValueError(
                    f"op {kind!r} consumes undefined slot {slot} "
                    "(capture must be forward-only)"
                )
        output = self._next_slot
        self._next_slot += 1
        self.ops.append(
            OpSpec(
                index=len(self.ops),
                kind=kind,
                inputs=tuple(inputs),
                output=output,
                module=module,
                params=dict(params),
                batch_invariant=_batch_invariant(kind, module),
            )
        )
        return output

    def build(self, output_slot: int) -> "ExecutionPlan":
        if not self.ops:
            raise ValueError("cannot build an empty execution plan")
        if output_slot != self.ops[-1].output:
            raise ValueError(
                "the plan output must be the last op's result "
                f"(got slot {output_slot}, last op writes {self.ops[-1].output})"
            )
        return ExecutionPlan(
            self.ops, num_slots=self._next_slot, output_slot=output_slot
        )


class ExecutionPlan:
    """A captured forward pass: ops in execution order over buffer slots.

    Slot 0 is the network input; every op writes a fresh slot, so the
    plan is SSA-like and trivially forward-only.  ``fusions`` names the
    numeric-changing rewrites applied (empty for bit-exact plans).

    Kernels live on ``backend`` (see :mod:`repro.backends`): the plan
    records *what* to compute, the backend supplies *how*.  A bare plan
    defaults to the numpy reference backend — engine-level selection
    (``create_engine(backend=...)`` / ``REPRO_BACKEND``) happens at
    capture, not here, so hand-built plans stay bit-exact by default.
    """

    def __init__(
        self,
        ops: list[OpSpec],
        *,
        num_slots: int,
        output_slot: int,
        input_slot: int = 0,
        fusions: tuple[str, ...] = (),
        backend: Backend | None = None,
    ) -> None:
        self.ops = list(ops)
        self.num_slots = num_slots
        self.input_slot = input_slot
        self.output_slot = output_slot
        self.fusions = tuple(fusions)
        self.backend = backend if backend is not None else get_backend("numpy")
        self._affected: dict[int, tuple[int, ...]] = {}

    def __len__(self) -> int:
        return len(self.ops)

    def run_op(self, op: OpSpec, inputs: list[np.ndarray], *, workspaces=None):
        """Execute one op on concrete input arrays."""
        return self.backend.run_op(op, inputs, workspaces=workspaces)

    def execute(self, x: np.ndarray) -> np.ndarray:
        """Full forward pass; returns the output-slot array."""
        return self.execute_all(x)[self.output_slot]

    def execute_all(self, x: np.ndarray, instrument=None) -> list:
        """Full forward pass keeping *every* slot's array (golden cache).

        *instrument*, when given, is called as ``instrument(op)`` and
        must return a context manager — the engine uses it to record
        per-op span timings during the one golden capture pass.
        """
        buffers: list = [None] * self.num_slots
        buffers[self.input_slot] = x
        for op in self.ops:
            inputs = [buffers[slot] for slot in op.inputs]
            if instrument is not None:
                with instrument(op):
                    buffers[op.output] = self.run_op(op, inputs)
            else:
                buffers[op.output] = self.run_op(op, inputs)
        return buffers

    def consumers(self, slot: int) -> list[OpSpec]:
        """Ops reading *slot* (multi-consumer slots pin fusion decisions)."""
        return [op for op in self.ops if slot in op.inputs]

    def affected_ops(self, op_index: int) -> tuple[int, ...]:
        """Indices of ops whose output transitively depends on op *op_index*.

        This is the op-granular prefix cache: everything *not* in this
        set keeps its golden activation when a fault perturbs op
        *op_index*'s weights.
        """
        cached = self._affected.get(op_index)
        if cached is not None:
            return cached
        dirty = {self.ops[op_index].output}
        affected: list[int] = []
        for op in self.ops[op_index + 1 :]:
            if any(slot in dirty for slot in op.inputs):
                affected.append(op.index)
                dirty.add(op.output)
        result = tuple(affected)
        self._affected[op_index] = result
        return result


def capture_plan(
    model: Module,
    *,
    fuse: bool = False,
    backend: Backend | str | None = None,
) -> ExecutionPlan:
    """Lower *model*'s forward pass into an :class:`ExecutionPlan`.

    The model must implement :meth:`~repro.nn.Module.capture` (all zoo
    models do).  With ``fuse=True`` the captured plan additionally goes
    through :func:`fuse_plan` — numeric-changing, see its docstring.
    *backend* (name, instance, or None → ``REPRO_BACKEND`` → numpy)
    selects the kernel backend the plan executes on; non-reference
    backends qualify the plan fingerprint with their attestation.

    Every captured plan is statically verified (O(ops²), milliseconds)
    before it crosses this trust boundary; a plan that fails raises
    :class:`~repro.check.PlanVerificationError` instead of silently
    miscomputing campaigns later.
    """
    builder = PlanBuilder()
    output = model.capture(builder, builder.input_slot)
    plan = builder.build(output)
    if backend is not None:
        plan.backend = resolve_backend(backend)
    # Lazy import: repro.check.plan reasons *about* this module.
    from repro.check import check_plan

    check_plan(plan)
    if fuse:
        plan = fuse_plan(plan)
    return plan


def fuse_plan(plan: ExecutionPlan) -> ExecutionPlan:
    """Fold every single-consumer conv→bn pair into one ``conv2d_bn`` op.

    The folded op computes with BN-scaled weights, which is *not*
    bitwise identical to conv-then-bn (one fewer rounding step); fused
    plans therefore change the engine fingerprint and must never be
    mixed with unfused results.  Fused plans also reuse preallocated
    im2col workspaces (values identical; allocation behaviour not).
    """
    if plan.fusions:
        return plan
    drop: set[int] = set()
    replace: dict[int, OpSpec] = {}
    for op in plan.ops:
        if op.kind != "conv2d" or op.output == plan.output_slot:
            continue
        consumers = plan.consumers(op.output)
        if len(consumers) != 1 or consumers[0].kind != "batchnorm2d":
            continue
        bn = consumers[0]
        replace[op.index] = OpSpec(
            index=op.index,
            kind="conv2d_bn",
            inputs=op.inputs,
            output=bn.output,
            module=op.module,
            params={**op.params, "bn": bn.module},
            batch_invariant=op.batch_invariant,
        )
        drop.add(bn.index)
    ops = []
    for op in plan.ops:
        if op.index in drop:
            continue
        op = replace.get(op.index, op)
        ops.append(
            OpSpec(
                index=len(ops),
                kind=op.kind,
                inputs=op.inputs,
                output=op.output,
                module=op.module,
                params=op.params,
                batch_invariant=op.batch_invariant,
            )
        )
    fused = ExecutionPlan(
        ops,
        num_slots=plan.num_slots,
        output_slot=plan.output_slot,
        input_slot=plan.input_slot,
        fusions=("bn_fold", "im2col_workspace"),
        backend=plan.backend,
    )
    # The rewrite changed dataflow (dropped bn ops, rewired slots):
    # re-verify rather than trusting the transformation.
    from repro.check import check_plan

    check_plan(fused)
    return fused
