"""The plan engine: op-granular prefix caching and batched fault evaluation.

:class:`PlanEngine` classifies weight faults exactly like
:class:`repro.faults.InferenceEngine` — same injector, same policies,
bit-identical outcomes when unfused — but executes a captured
:class:`~repro.runtime.ExecutionPlan` instead of walking the module tree:

- **Op-granular prefix caching.**  The golden pass keeps every op's
  output.  A fault in layer *l* re-executes only *l*'s op and the ops
  transitively downstream of it (``plan.affected_ops``); every other op
  is served from the cache.  The module engine's stage-granular cache
  re-runs a whole residual block even when only its second conv is hit.
- **Channel-sparse fault evaluation.**  A weight fault in a conv or
  linear layer perturbs exactly one output channel (GEMM rows are
  computed independently, so every other channel of the faulty output is
  bit-identical to the golden one — asserted by the test suite on this
  BLAS).  The engine therefore evaluates the fault op as a single-row
  GEMM against the layer's *cached golden im2col columns*, and carries
  only that dirty channel through the channel-preserving suffix (bn,
  relu, pooling, subsample, channel padding, residual adds against
  golden operands) as a ``(N, K, ...)`` slice.  Full activations are
  only materialised — golden copy plus one patched channel — at the
  first channel-*mixing* op (the next conv/linear), where dense
  execution resumes.  For faults in the last conv block the dense
  suffix all but vanishes.
- **Batched fault evaluation.**  K same-layer faults share one tail
  pass: their K corrupted weight rows stack into a single ``(K, k)``
  GEMM and the sparse suffix processes all K dirty channels at once.
  When dense execution resumes, the K variants are stacked along the
  batch axis while the working set stays cache-sized
  (:data:`DENSE_STACK_LIMIT`) and chunked per variant beyond that; ops
  whose kernels are not bit-stable under batch stacking (``linear``'s
  2-D GEMM, the einsum convolution paths) are always chunked — each
  chunk call is shaped exactly like the unbatched call, preserving
  bit-exactness.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.backends import Backend, resolve_backend
from repro.faults.engine import FaultInjectionEngine, InferenceEngine
from repro.faults.model import Fault
from repro.ieee754 import FLOAT32, FloatFormat
from repro.nn import Module
from repro.runtime.plan import OpSpec, capture_plan
from repro.telemetry import Telemetry
from repro.tensor.im2col import conv_output_size

#: Default number of same-layer faults evaluated per stacked tail pass.
DEFAULT_BATCH_SIZE = 16

#: Byte ceiling for the stacked dense tail: K variants are evaluated on
#: one stacked batch only while K x (materialised activations) fits in
#: this budget; beyond it the stacked arrays fall out of cache and the
#: tail is chunked per variant instead (each chunk bit-identical to the
#: unbatched pass either way).
DENSE_STACK_LIMIT = 4 * 1024 * 1024

#: Op kinds that keep a single dirty channel confined to that channel.
_CHANNEL_PRESERVING = frozenset(
    {
        "batchnorm2d",
        "relu",
        "relu6",
        "avg_pool2d",
        "global_avg_pool2d",
        "subsample2d",
    }
)


@dataclass(frozen=True)
class _SparsePrefix:
    """Static analysis of a fault op's channel-sparse tail prefix.

    ``steps`` holds ``(op, mode, aux)`` triples for the tail ops that
    preserve the dirty channel; ``dense_start`` is the tail position of
    the first channel-mixing op (``len(tail)`` when the whole tail is
    channel-preserving); ``mat_slots`` are the sparse slots that must be
    materialised — golden copy plus patched channel — for the dense
    resume, with their accumulated channel shift from ``pad_channels``.
    """

    steps: tuple
    dense_start: int
    mat_slots: tuple[tuple[int, int], ...]  # (slot, channel shift)


class PlanEngine(FaultInjectionEngine):
    """Fault classification over a captured execution plan.

    Parameters mirror :class:`repro.faults.InferenceEngine`, plus:

    fuse:
        Apply :func:`~repro.runtime.fuse_plan` (BN-folding + im2col
        workspace reuse).  **Numeric-changing** — outcomes may differ
        from the unfused/module engines, and the fingerprint changes so
        checkpoints and distributed merges refuse to mix them.
    batch_size:
        Same-layer faults evaluated per stacked tail pass (>= 1).
    backend:
        Kernel backend (name, instance, or None → ``REPRO_BACKEND`` →
        numpy reference).  Non-reference backends run every op through
        the generic dense paths (the channel-sparse fast path is stated
        against reference BLAS row-GEMM identities) and carry a
        backend-qualified plan fingerprint.
    """

    kind = "plan"

    def __init__(
        self,
        model: Module,
        images: np.ndarray,
        labels: np.ndarray,
        *,
        fmt: FloatFormat = FLOAT32,
        policy: str = "accuracy_drop",
        threshold: float = 0.0,
        telemetry: Telemetry | None = None,
        fuse: bool = False,
        batch_size: int = DEFAULT_BATCH_SIZE,
        backend: Backend | str | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        super().__init__(
            model,
            images,
            labels,
            fmt=fmt,
            policy=policy,
            threshold=threshold,
            telemetry=telemetry,
        )
        self.backend = resolve_backend(backend)
        self.plan = capture_plan(model, fuse=fuse, backend=self.backend)
        self.fusions = self.plan.fusions
        # Re-verify at the engine trust boundary (capture already did,
        # but the engine is also handed pre-built plans in tests) and
        # pin the verified structure's fingerprint — distributed shard
        # results attest this value so merges can refuse outcomes from
        # plans that never passed verification.
        from repro.check import check_plan  # lazy: check reasons about runtime

        if self.telemetry.enabled:
            with self.telemetry.span("check.verify_plan", emit=True):
                self.plan_fingerprint = check_plan(self.plan)
            self.telemetry.counter("check.plans_verified").add(1)
        else:
            self.plan_fingerprint = check_plan(self.plan)
        self.batch_size = int(batch_size)
        # im2col workspaces are an allocation-level optimisation only the
        # fused engine opts into; unfused plans allocate exactly like
        # forward_fast so the replay is a faithful reproduction.
        self._workspaces: dict | None = {} if self.plan.fusions else None
        instrument = None
        if self.telemetry.enabled:
            def instrument(op):
                return self.telemetry.span(f"plan.op.{op.kind}")
        self._golden = self.plan.execute_all(self.images, instrument=instrument)
        self.golden_predictions = self._golden[self.plan.output_slot].argmax(axis=1)
        self.golden_accuracy = float(
            (self.golden_predictions == self.labels).mean()
        )
        self._layer_op = self._map_layers_to_ops()
        # An op's tail pass may stack variants only when both the plan
        # flag (reference dispatch analysis) and the executing backend's
        # own attestation say the kernel is batch-invariant.
        self._stackable = [
            bool(op.batch_invariant) and self.backend.batch_invariant(op)
            for op in self.plan.ops
        ]
        self._free_schedule: dict[int, list[list[int]]] = {}
        self._sparse_cache: dict[int, _SparsePrefix | None] = {}
        # Golden im2col columns of the active fault layer (single entry:
        # campaigns sweep faults layer by layer, so one layer is hot).
        self._cols_cache: tuple[int, np.ndarray, int, int] | None = None
        #: Stacked tail passes executed (each covers up to batch_size faults).
        self.tail_passes = 0
        #: Tail ops actually recomputed across all passes.
        self.ops_executed = 0
        #: Ops served from the golden op cache instead of recomputed.
        self.ops_cached = 0

    def _map_layers_to_ops(self) -> list[int]:
        """Plan-op index owning each weight layer, in layer order.

        Keyed by module identity; a fused ``conv2d_bn`` op keeps the conv
        as its module, so the mapping survives fusion unchanged.
        """
        op_of_module = {}
        for op in self.plan.ops:
            if op.module is not None:
                op_of_module.setdefault(id(op.module), op.index)
        mapping = []
        for layer in self.layers:
            op_index = op_of_module.get(id(layer.module))
            if op_index is None:
                raise ValueError(
                    f"weight layer {layer.name} has no op in the captured "
                    "plan; capture() must cover the whole forward pass"
                )
            mapping.append(op_index)
        return mapping

    def _tail_free_schedule(self, op_index: int) -> list[list[int]]:
        """Per tail position, the env slots dead after that op runs.

        Freeing a tail buffer at its last use keeps the working set as
        small as ``forward_fast``'s, so the allocator serves every op
        from warm, recently-freed pages instead of fresh cold mappings —
        purely a memory-lifetime change, the values are untouched.
        """
        schedule = self._free_schedule.get(op_index)
        if schedule is None:
            tail = self.plan.affected_ops(op_index)
            produced = {self.plan.ops[op_index].output}
            produced.update(self.plan.ops[idx].output for idx in tail)
            last_use: dict[int, int] = {}
            for pos, idx in enumerate(tail):
                for slot in self.plan.ops[idx].inputs:
                    if slot in produced:
                        last_use[slot] = pos
            schedule = [[] for _ in tail]
            for slot, pos in last_use.items():
                if slot != self.plan.output_slot:
                    schedule[pos].append(slot)
            self._free_schedule[op_index] = schedule
        return schedule

    # -- fault evaluation ---------------------------------------------------

    def _predictions_with_fault(self, fault: Fault) -> np.ndarray:
        return self._run_batch(fault.layer, [fault])[0]

    def predictions_for_faults(self, faults: Sequence[Fault]) -> np.ndarray:
        """Faulty top-1 predictions, ``(K, N)``; same-layer faults share
        tail passes."""
        if not faults:
            return np.empty((0, len(self.images)), dtype=np.int64)
        if self.telemetry.enabled:
            with self.telemetry.span("engine.inference"):
                return self._predictions_for_faults(faults)
        return self._predictions_for_faults(faults)

    def _predictions_for_faults(self, faults: Sequence[Fault]) -> np.ndarray:
        by_layer: dict[int, list[int]] = {}
        for pos, fault in enumerate(faults):
            by_layer.setdefault(fault.layer, []).append(pos)
        rows = [None] * len(faults)
        for layer_idx, positions in by_layer.items():
            for start in range(0, len(positions), self.batch_size):
                chunk = positions[start : start + self.batch_size]
                preds = self._run_batch(layer_idx, [faults[p] for p in chunk])
                for pos, row in zip(chunk, preds):
                    rows[pos] = row
        return np.stack(rows)

    # -- channel-sparse analysis -------------------------------------------

    def _sparse_prefix(self, op_index: int) -> _SparsePrefix | None:
        """Static channel-sparse plan for faults in op *op_index*.

        ``None`` when the fault op itself is not row-separable (grouped
        or depthwise convs, fused conv+bn) — those fall back to dense
        full-recompute evaluation.  The whole analysis is stated against
        the reference backend's row-GEMM identities (and the hand-inlined
        numpy suffix kernels in :meth:`_sparse_batch`), so non-reference
        backends always take the dense path.
        """
        if op_index in self._sparse_cache:
            return self._sparse_cache[op_index]
        op = self.plan.ops[op_index]
        eligible = self.backend.is_reference and (
            op.kind == "linear"
            or (op.kind == "conv2d" and op.module.groups == 1)
        )
        info = None
        if eligible:
            tail = self.plan.affected_ops(op_index)
            shift = {op.output: 0}  # sparse slot -> channel shift
            steps = []
            dense_start = len(tail)
            for pos, idx in enumerate(tail):
                t = self.plan.ops[idx]
                dirty = [s for s in t.inputs if s in shift]
                if t.kind in _CHANNEL_PRESERVING and len(t.inputs) == 1:
                    shift[t.output] = shift[t.inputs[0]]
                    steps.append((t, t.kind, shift[t.output]))
                elif t.kind == "pad_channels":
                    shift[t.output] = (
                        shift[t.inputs[0]] + t.params["before"]
                    )
                    steps.append((t, "pad", None))
                elif t.kind == "add" and len(dirty) == 1:
                    other = next(s for s in t.inputs if s != dirty[0])
                    shift[t.output] = shift[dirty[0]]
                    steps.append(
                        (
                            t,
                            "add",
                            (
                                dirty[0],
                                other,
                                t.inputs[0] == dirty[0],
                                shift[dirty[0]],
                            ),
                        )
                    )
                else:
                    dense_start = pos
                    break
            live: dict[int, int] = {}
            for idx in tail[dense_start:]:
                for s in self.plan.ops[idx].inputs:
                    if s in shift:
                        live[s] = shift[s]
            if self.plan.output_slot in shift:
                live[self.plan.output_slot] = shift[self.plan.output_slot]
            info = _SparsePrefix(
                steps=tuple(steps),
                dense_start=dense_start,
                mat_slots=tuple(sorted(live.items())),
            )
        self._sparse_cache[op_index] = info
        return info

    def _fault_cols(self, op: OpSpec) -> tuple[np.ndarray, int, int]:
        """Golden im2col columns of *op*'s input (single-entry cache).

        The fault op always reads its *golden* input, so the columns are
        identical for every fault in the layer — im2col once, GEMM per
        corrupted row.
        """
        cached = self._cols_cache
        if cached is not None and cached[0] == op.index:
            return cached[1], cached[2], cached[3]
        m = op.module
        x = self._golden[op.inputs[0]]
        kk = m.kernel_size
        oh = conv_output_size(x.shape[2], kk, m.stride, m.padding)
        ow = conv_output_size(x.shape[3], kk, m.stride, m.padding)
        cols = self.backend.im2col(x, kk, kk, m.stride, m.padding)
        self._cols_cache = (op.index, cols, oh, ow)
        return cols, oh, ow

    def _variant_rows(
        self, op: OpSpec, faults: Sequence[Fault]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Faulty values of each fault's dirty channel, all K in one GEMM.

        Returns ``(chans, rows)`` where ``chans[v]`` is variant *v*'s
        output channel and ``rows`` stacks the channels' faulty
        activations as ``(N, K, oh, ow)`` (conv) or ``(N, K)`` (linear).
        Each result row is bit-identical to the corresponding row of the
        full faulty op output: GEMM rows are independent, and stacked
        row GEMMs with M >= 2 reproduce the full GEMM's rows exactly (a
        single row is duplicated to M = 2 for the same reason).
        """
        m = op.module
        k = len(faults)
        weight = m.weight.data
        per_row = weight.size // weight.shape[0]
        chans = np.array([f.index // per_row for f in faults])
        rows = np.empty((max(k, 2), per_row), dtype=np.float32)
        flat = weight.reshape(weight.shape[0], per_row)
        for v, fault in enumerate(faults):
            with self.injector.inject(fault):
                rows[v] = flat[chans[v]]
        if k == 1:
            rows[1] = rows[0]
        bias = None if m.bias is None else m.bias.data
        if op.kind == "linear":
            x = self._golden[op.inputs[0]]
            out = self.backend.gemm(x, rows.T)[:, :k]
            if bias is not None:
                out = out + bias[chans]
            return chans, out
        if m.kernel_size == 1 and m.padding == 0 and m.groups == 1:
            x = self._golden[op.inputs[0]]
            if m.stride != 1:
                x = x[:, :, ::m.stride, ::m.stride]
            n, c, oh, ow = x.shape
            cols = x.reshape(n, c, oh * ow)
        else:
            cols, oh, ow = self._fault_cols(op)
        out = self.backend.gemm(rows, cols)[:, :k].reshape(-1, k, oh, ow)
        if bias is not None:
            out = out + bias[chans].reshape(1, k, 1, 1)
        return chans, out

    # -- fault-batch execution ---------------------------------------------

    def _run_batch(self, layer_idx: int, faults: Sequence[Fault]) -> np.ndarray:
        """One tail pass over K faults of one layer -> (K, N) preds."""
        op_index = self._layer_op[layer_idx]
        op = self.plan.ops[op_index]
        k = len(faults)
        tail = self.plan.affected_ops(op_index)
        # Corrupted weights legitimately overflow to inf/NaN; only the
        # argmax below matters, so silence the warnings wholesale.
        with np.errstate(all="ignore"):
            info = self._sparse_prefix(op_index)
            if info is not None:
                preds = self._sparse_batch(op_index, op, tail, faults, info)
            else:
                preds = self._dense_fallback(op_index, op, tail, faults)
        self.tail_passes += 1
        self.ops_executed += len(tail)
        self.ops_cached += len(self.plan.ops) - 1 - len(tail)
        self.inference_count += k
        if self.telemetry.enabled:
            self.telemetry.counter("engine.inferences").add(k)
        return preds

    def _sparse_batch(
        self,
        op_index: int,
        op: OpSpec,
        tail: tuple[int, ...],
        faults: Sequence[Fault],
        info: _SparsePrefix,
    ) -> np.ndarray:
        k = len(faults)
        n = len(self.images)
        chans, rows = self._variant_rows(op, faults)
        senv = {op.output: rows}
        for t, mode, aux in info.steps:
            if mode == "pad":
                # Zero padding adds *other* channels; the dirty channel's
                # values pass through (its index shift is static).
                senv[t.output] = senv[t.inputs[0]]
            elif mode == "batchnorm2d":
                m = t.module
                # Full-vector scale/shift exactly as F.batchnorm2d, then
                # gather the K dirty channels: same per-element fma.
                scale = (
                    m.weight.data / np.sqrt(m.running_var + m.eps)
                ).astype(np.float32)
                offset = (m.bias.data - m.running_mean * scale).astype(
                    np.float32
                )
                ch = chans + aux
                x = senv[t.inputs[0]]
                senv[t.output] = x * scale[ch].reshape(
                    1, k, 1, 1
                ) + offset[ch].reshape(1, k, 1, 1)
            elif mode == "relu":
                senv[t.output] = np.maximum(senv[t.inputs[0]], 0.0)
            elif mode == "relu6":
                senv[t.output] = np.clip(senv[t.inputs[0]], 0.0, 6.0)
            elif mode == "avg_pool2d":
                x = senv[t.inputs[0]]
                kk = t.module.kernel
                _, _, h, w = x.shape
                view = x.reshape(n, k, h // kk, kk, w // kk, kk)
                senv[t.output] = view.mean(axis=(3, 5), dtype=np.float32)
            elif mode == "global_avg_pool2d":
                senv[t.output] = senv[t.inputs[0]].mean(
                    axis=(2, 3), dtype=np.float32
                )
            elif mode == "subsample2d":
                s = t.params["stride"]
                senv[t.output] = senv[t.inputs[0]][:, :, ::s, ::s]
            else:  # add against a golden operand (order preserved: NaNs)
                dirty_slot, other_slot, dirty_first, shift = aux
                x = senv[dirty_slot]
                g = self._golden[other_slot][:, chans + shift]
                senv[t.output] = x + g if dirty_first else g + x
        mats = [
            {
                slot: self._materialize(slot, shift, chans[v], senv, v)
                for slot, shift in info.mat_slots
            }
            for v in range(k)
        ]
        del senv
        if info.dense_start >= len(tail):
            logits = [m[self.plan.output_slot] for m in mats]
            return np.stack([lg.argmax(axis=1) for lg in logits])
        mat_bytes = sum(a.nbytes for a in mats[0].values())
        return self._stacked_tails(
            op_index, tail, info.dense_start, mats, mat_bytes,
            slots=[slot for slot, _ in info.mat_slots],
        )

    def _stacked_tails(
        self,
        op_index: int,
        tail: tuple[int, ...],
        start: int,
        mats: list[dict[int, np.ndarray]],
        mat_bytes: int,
        slots: list[int],
    ) -> np.ndarray:
        """Dense tails over K variant envs, stacked in cache-sized groups.

        Stacking is bit-identical at any group size (non-invariant
        kernels are chunked per variant inside the tail either way), so
        the group size is purely a throughput knob: all K variants stack
        while the seeded activations fit :data:`DENSE_STACK_LIMIT`,
        otherwise every variant runs alone — measured faster than
        partial stacking, whose K-times-larger per-op arrays fall out of
        cache without amortising enough dispatch overhead to pay for it.
        """
        k = len(mats)
        chunk = k if k * mat_bytes <= DENSE_STACK_LIMIT else 1
        preds = []
        for s in range(0, k, chunk):
            group = mats[s : s + chunk]
            if len(group) == 1:
                preds.append(
                    self._dense_tail(op_index, tail, start, group[0], 1)
                )
            else:
                env = {
                    slot: np.concatenate([m[slot] for m in group], axis=0)
                    for slot in slots
                }
                preds.append(
                    self._dense_tail(op_index, tail, start, env, len(group))
                )
        return np.concatenate(preds, axis=0)

    def _materialize(
        self, slot: int, shift: int, chan: int, senv: dict, v: int
    ) -> np.ndarray:
        """Golden copy of *slot* with variant *v*'s dirty channel patched.

        Every other channel of the true faulty activation is bit-equal
        to golden (channel-preserving ops never mix channels), so the
        copy-and-patch reproduces the dense result exactly.
        """
        full = self._golden[slot].copy()
        full[:, chan + shift] = senv[slot][:, v]
        return full

    def _dense_fallback(
        self,
        op_index: int,
        op: OpSpec,
        tail: tuple[int, ...],
        faults: Sequence[Fault],
    ) -> np.ndarray:
        """Full-recompute fault op (grouped/depthwise/fused) + dense tail."""
        k = len(faults)
        golden_inputs = [self._golden[s] for s in op.inputs]
        variants = []
        for fault in faults:
            with self.injector.inject(fault):
                variants.append(
                    self.plan.run_op(
                        op, golden_inputs, workspaces=self._workspaces
                    )
                )
        return self._stacked_tails(
            op_index,
            tail,
            0,
            [{op.output: var} for var in variants],
            variants[0].nbytes,
            slots=[op.output],
        )

    def _dense_tail(
        self,
        op_index: int,
        tail: tuple[int, ...],
        start: int,
        env: dict[int, np.ndarray],
        k: int,
    ) -> np.ndarray:
        """Run tail ops from *start* on seeded dirty slots -> (k, N) preds.

        ``k == 1`` replays the plain per-variant pass; ``k > 1`` runs the
        K variants stacked along the batch axis, chunking per variant
        for kernels that are not bit-stable under batch stacking.
        """
        n = len(self.images)
        free_after = self._tail_free_schedule(op_index)
        if k == 1:
            for pos in range(start, len(tail)):
                top = self.plan.ops[tail[pos]]
                inputs = [
                    env[s] if s in env else self._golden[s]
                    for s in top.inputs
                ]
                env[top.output] = self.plan.run_op(
                    top, inputs, workspaces=self._workspaces
                )
                del inputs
                for slot in free_after[pos]:
                    env.pop(slot, None)
            logits = env[self.plan.output_slot]
            return logits.argmax(axis=1)[None, :]
        for pos in range(start, len(tail)):
            top = self.plan.ops[tail[pos]]
            if not self._stackable[top.index]:
                # Not bit-stable under batch stacking: run once per
                # variant so every call is shaped exactly like the
                # unbatched one.
                chunks = []
                for v in range(k):
                    inputs = [
                        env[s][v * n : (v + 1) * n]
                        if s in env
                        else self._golden[s]
                        for s in top.inputs
                    ]
                    chunks.append(
                        self.plan.run_op(
                            top, inputs, workspaces=self._workspaces
                        )
                    )
                env[top.output] = np.concatenate(chunks, axis=0)
            elif top.kind == "add" and any(
                s not in env for s in top.inputs
            ):
                # One operand is still golden.  Tiling it K times just
                # to add would copy a full activation set; broadcasting
                # over a (k, n, ...) view adds the exact same element
                # pairs in the same order, so the result is bitwise
                # identical without the copy.  Operand order preserved.
                a_slot, b_slot = top.inputs
                if a_slot in env:
                    a = env[a_slot]
                    out = (
                        a.reshape(k, n, *a.shape[1:])
                        + self._golden[b_slot][None]
                    )
                else:
                    b = env[b_slot]
                    out = self._golden[a_slot][None] + b.reshape(
                        k, n, *b.shape[1:]
                    )
                env[top.output] = out.reshape(k * n, *out.shape[2:])
            else:
                inputs = [env[s] for s in top.inputs]
                env[top.output] = self.plan.run_op(
                    top, inputs, workspaces=self._workspaces
                )
                del inputs
            for slot in free_after[pos]:
                env.pop(slot, None)
        logits = env[self.plan.output_slot]
        return logits.reshape(k, n, -1).argmax(axis=2)


def create_engine(
    model: Module,
    images: np.ndarray,
    labels: np.ndarray,
    *,
    kind: str = "plan",
    fmt: FloatFormat = FLOAT32,
    policy: str = "accuracy_drop",
    threshold: float = 0.0,
    telemetry: Telemetry | None = None,
    fuse: bool = False,
    batch_size: int | None = None,
    backend: Backend | str | None = None,
) -> FaultInjectionEngine:
    """Build a fault-classification engine of the requested *kind*.

    ``kind="plan"`` (default) returns the op-granular, batching
    :class:`PlanEngine`; ``kind="plan_vectorized"`` the certified
    variant-axis :class:`~repro.runtime.vectorized.VectorizedPlanEngine`;
    ``kind="module"`` the stage-granular reference
    :class:`repro.faults.InferenceEngine`.  Unfused plan, vectorized and
    module engines produce bit-identical outcomes; *fuse* requires the
    plain plan engine (vectorized certificates are stated against exact
    numerics).  *backend* selects the kernel backend (explicit argument
    → ``REPRO_BACKEND`` → numpy reference); only the plan engine accepts
    non-reference backends — the module engine *is* the reference
    numerics and the vectorized certificates are proved against them.
    """
    if kind == "plan_vectorized":
        if fuse:
            raise ValueError(
                "the vectorized engine certifies against exact numerics; "
                "fusion changes them (use kind='plan' for fused runs)"
            )
        from repro.runtime.vectorized import (
            DEFAULT_VEC_BATCH_SIZE,
            VectorizedPlanEngine,
        )

        return VectorizedPlanEngine(
            model,
            images,
            labels,
            fmt=fmt,
            policy=policy,
            threshold=threshold,
            telemetry=telemetry,
            batch_size=(
                DEFAULT_VEC_BATCH_SIZE if batch_size is None else batch_size
            ),
            backend=backend,
        )
    if kind == "plan":
        return PlanEngine(
            model,
            images,
            labels,
            fmt=fmt,
            policy=policy,
            threshold=threshold,
            telemetry=telemetry,
            fuse=fuse,
            batch_size=DEFAULT_BATCH_SIZE if batch_size is None else batch_size,
            backend=backend,
        )
    if kind == "module":
        if fuse:
            raise ValueError(
                "fusion is a plan-engine feature; the module engine "
                "replays forward_fast verbatim (use kind='plan')"
            )
        if batch_size not in (None, 1):
            raise ValueError("the module engine evaluates faults one at a time")
        if not resolve_backend(backend).is_reference:
            raise ValueError(
                "the module engine replays forward_fast verbatim — it is "
                "the reference numerics; use kind='plan' for non-reference "
                "backends"
            )
        return InferenceEngine(
            model,
            images,
            labels,
            fmt=fmt,
            policy=policy,
            threshold=threshold,
            telemetry=telemetry,
        )
    raise ValueError(
        f"unknown engine kind {kind!r} "
        "(expected 'plan', 'plan_vectorized' or 'module')"
    )
