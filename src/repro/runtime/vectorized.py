"""Variant-axis vectorized fault evaluation with no-flip certification.

The exact engines spend almost all campaign wall-clock re-running the
faulted suffix densely, once per fault variant — even though ~97% of
non-masked faults end up predicting exactly the golden labels.  This
module exploits that: instead of *computing* every faulty activation, it
*certifies* — per fault and per image — that the fault cannot flip the
top-1 prediction, and only runs kernels for the rows that survive.

The certificate is a sound channelwise delta bound propagated through
the suffix by the absorption calculus the verifier owns
(:func:`repro.check.kernels.absorption_spec`).  Two chains run in
parallel — per-channel **max** and per-channel **mean** of ``|delta|``
over spatial positions — because after relu gating the deltas are
spiky, so the mean chain (which ``global_avg_pool2d`` maps straight
onto the logits) is often orders of magnitude sharper than the max
chain; the final bound is the minimum of the two.  A fault is certified
for an image when ``(bound_j + bound_gp) * slack`` stays below the
golden logit margin for every class *j*: the prediction provably cannot
move, so the row inherits the golden prediction without any kernel
work.

Execution pipeline per batch of K same-layer faults:

0. **Pre-certification** — a bound from the corrupted weight delta and
   the golden input channel statistics alone.  No kernels at all; on
   the campaign-representative mix this retires the majority of faults.
1. **Exact dirty rows + chain propagation** — surviving variants'
   faulted output channels via one stacked row-GEMM
   (:meth:`PlanEngine._variant_rows`, bit-identical to the dense op's
   rows), re-certified against the now exact channel delta; then the
   dirty channel is replayed bitwise through any single-consumer chain
   of channel-preserving ops (bn / relu / relu6 / subsample / pad) and
   re-certified once more at the chain's end — post-relu gating is by
   far the strongest pruner.
2. **Adaptive dense delegation** — a variant still alive on most of the
   eval batch after seeding has nothing left to prune; it is handed
   verbatim to :meth:`PlanEngine._run_batch` (the exact engine's
   contiguous, certification-free dense tail), which is faster per row
   once certification can no longer win.
3. **Stacked suffix walk** — the remaining (variant, image) rows are
   lifted into one leading variant axis and the suffix runs as stacked
   im2col + one big GEMM per op, re-certifying and compacting rows at a
   stride.  A per-op memory budget (im2col-expansion aware) cache-blocks
   the stacked workspace; batch-invariant kernels are bit-stable under
   both the stacking and the blocking.
4. **Exact fallback** — ops the verifier does *not* mark
   batch-invariant (the final 2-D GEMM, depthwise/grouped einsum convs)
   run once per variant at the full eval batch, exactly shaped like the
   exact engine's call.  GEMM and einsum output rows depend only on
   their own input row, so the surviving rows come out bit-identical.

Certified rows provably keep golden predictions; surviving rows run
through bit-stable kernels at exact-engine shapes — so the predictions
matrix is bit-identical to :class:`PlanEngine`'s, which is what lets
:func:`repro.check.check_plan_vectorized` declare the vectorized
fingerprint compatible with the exact one for checkpoint and
distributed-merge purposes.  The certification arithmetic runs in
float64 with a multiplicative slack so its own rounding stays far below
the margins it compares against; non-finite bounds (saturating faults)
never certify and always take the exact path.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.faults.model import Fault
from repro.ieee754 import FLOAT32, FloatFormat
from repro.nn import functional as F
from repro.nn.module import Module
from repro.runtime.engine import PlanEngine
from repro.runtime.plan import OpSpec
from repro.telemetry import Telemetry

#: Per-op byte budget for the stacked suffix workspace; stacked rows
#: beyond it are executed in row blocks so the per-op working set stays
#: cache-sized (bit-identical: blocking only splits the batch axis of
#: batch-invariant kernels).
DEFAULT_OP_BUDGET = 4 * 1024 * 1024

#: Multiplicative slack on every certification bound: keeps the float64
#: bound arithmetic's own rounding from certifying a borderline fault
#: the float32 kernels would flip.
CERT_SLACK = 1.001

#: Re-certify the stacked rows every this many tail ops.  Recomputing
#: the delta statistics costs about as much as a small op, so per-op
#: certification would double the walk; pruning is purely a perf
#: optimisation (certified rows are bit-exact and argmax to the golden
#: prediction anyway), so a stride trades a little extra kernel work
#: for far less bound arithmetic.
CERT_STRIDE = 3

#: Skip certification below this many stacked rows — running a small
#: tail to completion is cheaper than trying to prune it.
CERT_MIN_ROWS = 48

#: Ops that touch each channel independently (or merely renumber
#: channels): a single dirty channel can be replayed through them in
#: isolation, bit-identically to the full op.
_PRESERVE_KINDS = frozenset(
    {"batchnorm2d", "relu", "relu6", "subsample2d", "pad_channels"}
)

#: A seeded variant still alive on more than ``n // DENSE_ALIVE_DIV``
#: images is delegated to the exact engine's dense tail instead of the
#: certified walk — with most rows alive there is nothing to prune, and
#: the dense path's contiguous, certification-free kernels are faster
#: per row.
DENSE_ALIVE_DIV = 6

#: Default same-layer faults per batch.  Much larger than the exact
#: engine's: the certified walk's cost scales with surviving rows, not
#: K, so a big variant axis amortises the per-op call overhead that
#: dominates at this model scale.
DEFAULT_VEC_BATCH_SIZE = 256


class VectorizedPlanEngine(PlanEngine):
    """Certified variant-axis vectorized execution over a captured plan.

    Parameters mirror :class:`PlanEngine` (always unfused — the
    certificates are stated against exact numerics), plus:

    op_budget:
        Per-op byte budget for the stacked suffix workspace (see
        :data:`DEFAULT_OP_BUDGET`).

    Outcomes are bit-identical to the unfused plan and module engines;
    the engine runs under distinct plan/engine fingerprints that
    :func:`repro.check.check_plan_vectorized` declares compatible with
    its exact twins.
    """

    kind = "plan_vectorized"

    def __init__(
        self,
        model: Module,
        images: np.ndarray,
        labels: np.ndarray,
        *,
        fmt: FloatFormat = FLOAT32,
        policy: str = "accuracy_drop",
        threshold: float = 0.0,
        telemetry: Telemetry | None = None,
        batch_size: int = DEFAULT_VEC_BATCH_SIZE,
        op_budget: int = DEFAULT_OP_BUDGET,
        backend=None,
    ) -> None:
        from repro.backends import resolve_backend

        resolved = resolve_backend(backend)
        if not resolved.is_reference:
            raise ValueError(
                "the vectorized engine's no-flip certificates and dirty-row "
                f"replay are proved against the reference numerics; backend "
                f"{resolved.name!r} is not the reference (use kind='plan')"
            )
        super().__init__(
            model,
            images,
            labels,
            fmt=fmt,
            policy=policy,
            threshold=threshold,
            telemetry=telemetry,
            fuse=False,
            batch_size=batch_size,
            backend=resolved,
        )
        if op_budget < 1:
            raise ValueError(f"op_budget must be >= 1, got {op_budget}")
        self.op_budget = int(op_budget)
        # Lazy: repro.check reasons about runtime; runtime must not
        # import it at module load.
        from repro.check import (
            check_plan_vectorized,
            declare_fingerprints_compatible,
        )

        #: Mode-qualified structural fingerprint.  check_plan_vectorized
        #: also declares it compatible with the exact plan fingerprint.
        self.plan_fingerprint = check_plan_vectorized(self.plan)
        # Engine-level (golden weights + images) identity: attested
        # bit-identical to the exact twins, so checkpoints/merges may
        # mix them — an explicit declaration, never an implicit pass.
        own = self.fingerprint()
        declare_fingerprints_compatible(own, self.fingerprint(kind="plan"))
        declare_fingerprints_compatible(own, self.fingerprint(kind="module"))

        n = len(self.images)
        logits = self._golden[self.plan.output_slot].astype(np.float64)
        margin = logits[np.arange(n), self.golden_predictions][:, None] - logits
        margin[np.arange(n), self.golden_predictions] = np.inf
        #: Per-image logit margin to every class (inf at the golden class).
        self._margin = margin
        self._num_classes = logits.shape[1]
        self._gamma_cache: dict[int, tuple[dict, dict]] = {}
        self._stats_cache: tuple[int, np.ndarray, np.ndarray] | None = None
        self._chain_cache: dict[int, list[OpSpec]] = {}
        self._bn_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

        #: Faults fully retired by pre-certification (no kernel work).
        self.precertified = 0
        #: (variant, image) rows certified during seeding or the walk.
        self.certified_rows = 0
        #: Rows that reached the plan output and were argmax-classified.
        self.survivor_rows = 0
        #: Stacked op executions split by the per-op memory budget.
        self.vec_blocks = 0
        #: Non-batch-invariant ops replayed per variant at full batch.
        self.full_batch_ops = 0
        #: Variants delegated to the exact dense tail (mostly-alive).
        self.dense_fallback_faults = 0

    # -- certification machinery -------------------------------------------

    def _absorb(self, op: OpSpec, mean: bool):
        from repro.check.kernels import absorption_spec

        x_in = self._golden[op.inputs[0]]
        x_out = self._golden[op.output]
        in_pos = int(np.prod(x_in.shape[2:])) if x_in.ndim > 2 else 1
        out_pos = int(np.prod(x_out.shape[2:])) if x_out.ndim > 2 else 1
        return absorption_spec(
            op,
            mean=mean,
            in_positions=in_pos,
            out_positions=out_pos,
            input_rank=x_in.ndim - 1,
        )

    def _slot_width(self, slot: int) -> int:
        arr = self._golden[slot]
        return arr.shape[1] if arr.ndim > 1 else arr.shape[0]

    def _gammas(self, op_index: int) -> tuple[dict, dict]:
        """Suffix absorption tables after op *op_index* has executed.

        For each chain (max, mean) a ``{slot: (classes, width)}`` float64
        matrix ``G`` such that ``|logit delta| <= sum_slots G[s] @ b_s``
        for channelwise delta bounds ``b_s`` of the dirty slots — built
        by reverse accumulation of per-op absorption specs; ``add`` ops
        accumulate into both operands, ops with no absorption row
        contribute an infinite column (rows never certify through them).
        """
        cached = self._gamma_cache.get(op_index)
        if cached is not None:
            return cached
        eye = np.eye(self._num_classes, dtype=np.float64)
        out_slot = self.plan.output_slot
        tables = (
            {out_slot: eye},
            {out_slot: eye.copy()},
        )
        for op in reversed(self.plan.ops):
            if op.index <= op_index:
                break
            for table, mean in zip(tables, (False, True)):
                g_out = table.get(op.output)
                if g_out is None:
                    continue
                if op.kind == "add":
                    for slot in op.inputs:
                        prev = table.get(slot)
                        table[slot] = g_out if prev is None else prev + g_out
                    continue
                spec = self._absorb(op, mean)
                if spec is None:
                    contrib = np.full(
                        (self._num_classes, self._slot_width(op.inputs[0])),
                        np.inf,
                    )
                elif spec[0] == "mat":
                    contrib = g_out @ spec[1]
                elif spec[0] == "diag":
                    contrib = g_out * spec[1][None, :]
                elif spec[0] == "scale":
                    contrib = g_out * spec[1]
                elif spec[0] == "pad":
                    before, after = spec[1], spec[2]
                    end = g_out.shape[1] - after if after else None
                    contrib = g_out[:, before:end]
                else:  # "id"
                    contrib = g_out
                slot = op.inputs[0]
                prev = table.get(slot)
                table[slot] = contrib if prev is None else prev + contrib
        self._gamma_cache[op_index] = tables
        return tables

    def _certified(
        self, bound: np.ndarray, img: np.ndarray | None
    ) -> np.ndarray:
        """Rows whose prediction provably cannot flip.

        ``bound`` is the per-row, per-class logit delta bound; a flip to
        class *j* needs the delta of ``logit_j - logit_gp`` to exceed
        the golden margin, and that delta is at most ``bound_j +
        bound_gp``.  Non-finite bounds (saturating faults) never
        certify.
        """
        gp = self.golden_predictions if img is None else self.golden_predictions[img]
        margin = self._margin if img is None else self._margin[img]
        bt = bound[np.arange(len(bound)), gp]
        tot = (bound + bt[:, None]) * CERT_SLACK
        return (tot < margin).all(axis=1) & np.isfinite(tot).all(axis=1)

    def _input_stats(self, op: OpSpec) -> tuple[np.ndarray, np.ndarray]:
        """Golden (max, mean) |input| channel stats (single-entry cache)."""
        cached = self._stats_cache
        if cached is not None and cached[0] == op.index:
            return cached[1], cached[2]
        maxabs, meanabs = F.channel_abs_stats(self._golden[op.inputs[0]])
        self._stats_cache = (op.index, maxabs, meanabs)
        return maxabs, meanabs

    def _precertify(
        self,
        op: OpSpec,
        fault: Fault,
        gcol_max: np.ndarray,
        gcol_mean: np.ndarray,
    ) -> np.ndarray:
        """Alive-image mask from the weight delta alone (no kernels).

        A single corrupted weight perturbs one output channel; its delta
        at any output position is the weight delta times one golden
        input value of the weight's input channel, so the golden input's
        per-image channel statistics bound the whole fault effect.
        """
        golden_val, faulty = self.injector.faulty_value(fault)
        dw = abs(faulty - golden_val)
        idx = np.unravel_index(fault.index, op.module.weight.data.shape)
        och, ic = int(idx[0]), int(idx[1])
        if op.kind == "linear":
            x = self._golden[op.inputs[0]]
            b0max = b0mean = dw * np.abs(x[:, ic]).astype(np.float64)
        else:
            maxabs, meanabs = self._input_stats(op)
            x_in = self._golden[op.inputs[0]]
            x_out = self._golden[op.output]
            pos_ratio = (x_in.shape[2] * x_in.shape[3]) / (
                x_out.shape[2] * x_out.shape[3]
            )
            b0max = dw * maxabs[:, ic]
            b0mean = dw * meanabs[:, ic] * pos_ratio
        bound = np.minimum(
            np.outer(b0max, gcol_max[:, och]),
            np.outer(b0mean, gcol_mean[:, och]),
        )
        return ~self._certified(bound, None)

    # -- fault-batch execution ---------------------------------------------

    def _run_batch(
        self, layer_idx: int, faults: Sequence[Fault]
    ) -> np.ndarray:
        op_index = self._layer_op[layer_idx]
        op = self.plan.ops[op_index]
        k = len(faults)
        tail = self.plan.affected_ops(op_index)
        preds = np.tile(self.golden_predictions, (k, 1))
        with np.errstate(all="ignore"):
            gmax, gmean = self._gammas(op_index)
            gcol_max, gcol_mean = gmax[op.output], gmean[op.output]
            eligible = op.kind == "linear" or (
                op.kind == "conv2d" and op.module.groups == 1
            )
            survivors: list[tuple[int, Fault, np.ndarray]] = []
            for v, fault in enumerate(faults):
                if eligible:
                    alive = self._precertify(op, fault, gcol_max, gcol_mean)
                else:
                    alive = np.ones(len(self.images), dtype=bool)
                if alive.any():
                    survivors.append((v, fault, alive))
                else:
                    self.precertified += 1
            dense_count = 0
            if survivors:
                if eligible:
                    img, var, start, start_idx = self._seed_sparse(
                        op, survivors, gcol_max, gcol_mean
                    )
                else:
                    img, var, start, start_idx = self._seed_dense(
                        op, survivors, gcol_max, gcol_mean
                    )
                if img.size:
                    # Variants still alive on most images gain nothing
                    # from row pruning — the exact engine's dense tail
                    # is faster per row (contiguous, no certification).
                    # Delegate them, bit-exactly, and walk the rest.
                    counts = np.bincount(var, minlength=k)
                    n = len(self.images)
                    dense = np.nonzero(counts > n // DENSE_ALIVE_DIV)[0]
                    if dense.size:
                        dense_count = int(dense.size)
                        keep = ~np.isin(var, dense)
                        img, var, start = img[keep], var[keep], start[keep]
                        preds[dense] = PlanEngine._run_batch(
                            self, layer_idx, [faults[v] for v in dense]
                        )
                        self.dense_fallback_faults += dense_count
                self._walk(
                    start_idx,
                    self.plan.affected_ops(start_idx),
                    img,
                    var,
                    start,
                    preds,
                )
        self.tail_passes += 1
        self.ops_executed += len(tail) if survivors else 0
        self.ops_cached += len(self.plan.ops) - 1 - len(tail)
        # The delegated dense pass already counted its own inferences
        # (and a tail pass) via the parent implementation.
        self.inference_count += k - dense_count
        if self.telemetry.enabled:
            self.telemetry.counter("engine.inferences").add(k - dense_count)
            self.telemetry.counter("engine.precertified").add(
                k - len(survivors)
            )
        return preds

    def _preserve_chain(self, op_index: int) -> list[OpSpec]:
        """Longest single-consumer channel-preserving chain after an op.

        While the fault's effect stays confined to one channel, bn /
        relu / subsample / pad can be replayed on that channel alone —
        bitwise equal to the full op at a fraction of the cost — before
        the first channel-mixing op forces dense execution.
        """
        chain = self._chain_cache.get(op_index)
        if chain is None:
            chain = []
            slot = self.plan.ops[op_index].output
            while True:
                cons = self.plan.consumers(slot)
                if len(cons) != 1:
                    break
                t = cons[0]
                if t.kind not in _PRESERVE_KINDS or len(t.inputs) != 1:
                    break
                chain.append(t)
                slot = t.output
            self._chain_cache[op_index] = chain
        return chain

    def _apply_channel(
        self, t: OpSpec, val: np.ndarray, c: int
    ) -> tuple[np.ndarray, int]:
        """Run channel-preserving op *t* on one channel's values.

        The kernels are elementwise per channel (bn affine, relu
        clamps) or pure reindexing (subsample, pad), so the slice comes
        out bit-identical to slicing the full op's output.
        """
        if t.kind == "batchnorm2d":
            cached = self._bn_cache.get(t.index)
            if cached is None:
                m = t.module
                scale = (
                    m.weight.data / np.sqrt(m.running_var + m.eps)
                ).astype(np.float32)
                shift = (m.bias.data - m.running_mean * scale).astype(
                    np.float32
                )
                cached = self._bn_cache[t.index] = (scale, shift)
            scale, shift = cached
            return val * scale[c] + shift[c], c
        if t.kind == "relu":
            return np.maximum(val, 0.0), c
        if t.kind == "relu6":
            return np.clip(val, 0.0, 6.0), c
        if t.kind == "subsample2d":
            stride = t.params["stride"]
            return val[:, ::stride, ::stride], c
        return val, c + t.params["before"]  # pad_channels renumbers

    def _seed_sparse(
        self,
        op: OpSpec,
        survivors: list[tuple[int, Fault, np.ndarray]],
        gcol_max: np.ndarray,
        gcol_mean: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Exact dirty rows for the surviving variants, re-certified.

        One stacked row-GEMM computes every variant's faulted output
        channel bit-exactly and the exact channel delta re-certifies.
        Surviving rows are then replayed — still single-channel, still
        bit-exact — through the channel-preserving chain (bn gains,
        relu gating) and certified once more where the sharpened delta
        retires most of what the weight-level bound could not.  What
        remains is materialised as golden copies of the chain-end slot
        with the dirty channel patched (bit-equal to dense execution:
        row GEMMs are independent, other channels never change).
        """
        chans, rows = self._variant_rows(op, [f for _, f, _ in survivors])
        golden_out = self._golden[op.output]
        chain = self._preserve_chain(op.index) if rows.ndim > 2 else []
        start_op = chain[-1] if chain else op
        if chain:
            end_gmax, end_gmean = self._gammas(start_op.index)
            ecol_max = end_gmax[start_op.output]
            ecol_mean = end_gmean[start_op.output]
            end_golden = self._golden[start_op.output]
        imgs, vars_, patches = [], [], []
        for j, (v, _fault, alive) in enumerate(survivors):
            delta = rows[:, j] - golden_out[:, chans[j]]
            if delta.ndim > 1:
                d64 = np.abs(delta).astype(np.float64)
                axes = tuple(range(1, delta.ndim))
                bmax, bmean = d64.max(axis=axes), d64.mean(axis=axes)
            else:
                bmax = bmean = np.abs(delta).astype(np.float64)
            bound = np.minimum(
                np.outer(bmax, gcol_max[:, chans[j]]),
                np.outer(bmean, gcol_mean[:, chans[j]]),
            )
            keep = alive & ~self._certified(bound, None)
            idx = np.nonzero(keep)[0]
            if idx.size and chain:
                val, c = rows[idx, j], int(chans[j])
                for t in chain:
                    val, c = self._apply_channel(t, val, c)
                d = np.abs(val - end_golden[idx, c])
                bound = np.minimum(
                    np.outer(
                        d.max(axis=(1, 2)).astype(np.float64),
                        ecol_max[:, c],
                    ),
                    np.outer(
                        d.mean(axis=(1, 2), dtype=np.float64),
                        ecol_mean[:, c],
                    ),
                )
                still = ~self._certified(bound, idx)
                idx, val = idx[still], val[still]
            elif idx.size:
                val, c = rows[idx, j], int(chans[j])
            self.certified_rows += int(alive.sum() - idx.size)
            if idx.size:
                imgs.append(idx)
                vars_.append(np.full(idx.size, v, dtype=np.int64))
                patches.append((c, val))
        start_shape = self._golden[start_op.output].shape[1:]
        if not imgs:
            empty = np.empty(0, dtype=np.int64)
            return (
                empty,
                empty,
                np.empty((0,) + start_shape, np.float32),
                start_op.index,
            )
        img = np.concatenate(imgs)
        var = np.concatenate(vars_)
        start = self._golden[start_op.output][img].copy()
        offset = 0
        for c, val in patches:
            start[offset : offset + len(val), c] = val
            offset += len(val)
        return img, var, start, start_op.index

    def _seed_dense(
        self,
        op: OpSpec,
        survivors: list[tuple[int, Fault, np.ndarray]],
        gcol_max: np.ndarray,
        gcol_mean: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Full faulted op per variant (grouped/depthwise convs).

        These kernels are not row-separable, so the faulted op runs
        exactly as the exact engine would — full batch, full channels —
        and certification starts from the complete output delta.
        """
        golden_inputs = [self._golden[s] for s in op.inputs]
        golden_out = self._golden[op.output]
        imgs, vars_, parts = [], [], []
        for v, fault, alive in survivors:
            with self.injector.inject(fault):
                out = self.plan.run_op(
                    op, golden_inputs, workspaces=self._workspaces
                )
            bmax, bmean = F.channel_abs_stats(out - golden_out)
            bound = np.minimum(bmax @ gcol_max.T, bmean @ gcol_mean.T)
            keep = alive & ~self._certified(bound, None)
            idx = np.nonzero(keep)[0]
            self.certified_rows += int(alive.sum() - idx.size)
            if idx.size:
                imgs.append(idx)
                vars_.append(np.full(idx.size, v, dtype=np.int64))
                parts.append(out[idx])
        if not imgs:
            empty = np.empty(0, dtype=np.int64)
            return (
                empty,
                empty,
                np.empty((0,) + golden_out.shape[1:], np.float32),
                op.index,
            )
        return (
            np.concatenate(imgs),
            np.concatenate(vars_),
            np.concatenate(parts, axis=0),
            op.index,
        )

    def _walk(
        self,
        op_index: int,
        tail: tuple[int, ...],
        img: np.ndarray,
        var: np.ndarray,
        start: np.ndarray,
        preds: np.ndarray,
    ) -> None:
        """Stacked suffix walk with per-op re-certification + compaction."""
        if img.size == 0:
            return
        env: dict[int, np.ndarray] = {self.plan.ops[op_index].output: start}
        free_after = self._tail_free_schedule(op_index)
        last = len(tail) - 1
        for pos, t_index in enumerate(tail):
            t = self.plan.ops[t_index]
            if t.batch_invariant:
                env[t.output] = self._run_stacked(t, env, img)
            else:
                env[t.output] = self._run_full_batch(t, env, img, var)
                self.full_batch_ops += 1
            for slot in free_after[pos]:
                env.pop(slot, None)
            # Certifying at the last op is pointless (argmax is cheaper)
            # and pruning small row counts costs more than it saves.
            if (
                pos == last
                or img.size < CERT_MIN_ROWS
                or pos % CERT_STRIDE != CERT_STRIDE - 1
            ):
                continue
            keep = self._certify_rows(t_index, env, img)
            if not keep.all():
                self.certified_rows += int((~keep).sum())
                img, var = img[keep], var[keep]
                env = {s: a[keep] for s, a in env.items()}
                if img.size == 0:
                    return
        logits = env[self.plan.output_slot]
        preds[var, img] = logits.argmax(axis=1)
        self.survivor_rows += img.size

    def _certify_rows(
        self, t_index: int, env: dict[int, np.ndarray], img: np.ndarray
    ) -> np.ndarray:
        """Keep-mask over the stacked rows after op *t_index* ran."""
        gmax, gmean = self._gammas(t_index)
        m = img.size
        bmax = np.zeros((m, self._num_classes))
        bmean = np.zeros((m, self._num_classes))
        contributed = False
        for slot, arr in env.items():
            g = gmax.get(slot)
            if g is None:
                continue  # the slot's delta can no longer reach the output
            b1, b2 = F.channel_abs_stats(arr - self._golden[slot][img])
            bmax += b1 @ g.T
            bmean += b2 @ gmean[slot].T
            contributed = True
        if not contributed:
            return np.zeros(m, dtype=bool)
        return ~self._certified(np.minimum(bmax, bmean), img)

    def _run_stacked(
        self, t: OpSpec, env: dict[int, np.ndarray], img: np.ndarray
    ) -> np.ndarray:
        """Batch-invariant op over the stacked rows, budget-blocked.

        Golden operands are gathered per row; blocking splits only the
        batch axis, which batch-invariant kernels are bit-stable under.
        """
        inputs = [
            env[s] if s in env else self._golden[s][img] for s in t.inputs
        ]
        m = img.size
        row_bytes = sum(a.nbytes for a in inputs) // max(m, 1)
        if t.kind == "conv2d":
            # The im2col workspace expands the input kh*kw-fold; size
            # the block for the materialised columns, not the input —
            # a block that overflows cache triples the per-row cost.
            kh, kw = t.module.weight.data.shape[2:]
            if kh * kw > 1:
                row_bytes *= 1 + kh * kw
        block = max(1, self.op_budget // max(row_bytes, 1))
        if m <= block:
            return self.plan.run_op(t, inputs, workspaces=self._workspaces)
        self.vec_blocks += -(-m // block)
        parts = [
            self.plan.run_op(
                t,
                [a[lo : lo + block] for a in inputs],
                workspaces=self._workspaces,
            )
            for lo in range(0, m, block)
        ]
        return np.concatenate(parts, axis=0)

    def _run_full_batch(
        self,
        t: OpSpec,
        env: dict[int, np.ndarray],
        img: np.ndarray,
        var: np.ndarray,
    ) -> np.ndarray:
        """Non-batch-invariant op: one full-batch call per variant.

        The call is shaped exactly like the exact engine's (full eval
        batch), with golden rows standing in for already-certified
        images.  2-D GEMM and einsum outputs are computed row-by-row
        from their own input row only, so the gathered surviving rows
        are bit-identical to the exact engine's — the stand-in values
        never enter their arithmetic.
        """
        outs = []
        for v in np.unique(var):
            sel = var == v
            idx = img[sel]
            inputs = []
            for s in t.inputs:
                if s in env:
                    full = self._golden[s].copy()
                    full[idx] = env[s][sel]
                else:
                    full = self._golden[s]
                inputs.append(full)
            out = self.plan.run_op(t, inputs, workspaces=self._workspaces)
            outs.append(out[idx])
        return np.concatenate(outs, axis=0)
