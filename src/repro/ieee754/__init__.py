"""IEEE-754 bit manipulation substrate.

Everything the fault injector and the data-aware analysis need to treat
floating-point weights as bit vectors:

- :class:`FloatFormat` descriptors for float32, float16 and bfloat16
  (:data:`FLOAT32`, :data:`FLOAT16`, :data:`BFLOAT16`).
- Vectorised encode/decode between values and raw bit patterns.
- Bit-level primitives: :func:`get_bit`, :func:`set_bit`, :func:`clear_bit`,
  :func:`flip_bit`, :func:`apply_stuck_at`.
- Weight-population statistics used by the paper's Eq. 4:
  :func:`bit_frequencies` (f0/f1 per bit) and :func:`bit_flip_distances`
  (average |golden - faulty| per bit and flip direction).
"""

from repro.ieee754.formats import (
    BFLOAT16,
    FLOAT16,
    FLOAT32,
    FLOAT8_E4M3,
    FLOAT8_E5M2,
    FORMATS,
    BitRole,
    FloatFormat,
    format_by_name,
    make_format,
)
from repro.ieee754.bits import (
    apply_stuck_at,
    clear_bit,
    corrupt_value,
    flip_bit,
    get_bit,
    set_bit,
)
from repro.ieee754.frequency import BitFrequencies, bit_frequencies
from repro.ieee754.distance import BitFlipDistances, bit_flip_distances

__all__ = [
    "BFLOAT16",
    "FLOAT16",
    "FLOAT32",
    "FLOAT8_E4M3",
    "FLOAT8_E5M2",
    "FORMATS",
    "make_format",
    "BitRole",
    "FloatFormat",
    "format_by_name",
    "apply_stuck_at",
    "clear_bit",
    "corrupt_value",
    "flip_bit",
    "get_bit",
    "set_bit",
    "BitFrequencies",
    "bit_frequencies",
    "BitFlipDistances",
    "bit_flip_distances",
]
