"""Vectorised bit-level primitives on floating-point words.

All functions operate on raw bit patterns (unsigned integer arrays produced
by :meth:`FloatFormat.encode`) and are fully vectorised: ``bits`` may be any
shape, and ``bit`` may be a scalar or an array broadcastable against it.
"""

from __future__ import annotations

import numpy as np

from repro.ieee754.formats import FloatFormat


def _mask(fmt: FloatFormat, bit) -> np.ndarray:
    bit = np.asarray(bit)
    if np.any(bit < 0) or np.any(bit >= fmt.total_bits):
        raise ValueError(
            f"bit index out of range for {fmt.name} (0..{fmt.total_bits - 1})"
        )
    one = np.array(1, dtype=fmt.uint_dtype)
    return (one << bit.astype(fmt.uint_dtype)).astype(fmt.uint_dtype)


def get_bit(fmt: FloatFormat, bits: np.ndarray, bit) -> np.ndarray:
    """Return 0/1 value of *bit* in each word of *bits*."""
    bits = np.asarray(bits, dtype=fmt.uint_dtype)
    return ((bits & _mask(fmt, bit)) != 0).astype(np.uint8)


def set_bit(fmt: FloatFormat, bits: np.ndarray, bit) -> np.ndarray:
    """Return a copy of *bits* with *bit* forced to 1 (stuck-at-1)."""
    bits = np.asarray(bits, dtype=fmt.uint_dtype)
    return bits | _mask(fmt, bit)


def clear_bit(fmt: FloatFormat, bits: np.ndarray, bit) -> np.ndarray:
    """Return a copy of *bits* with *bit* forced to 0 (stuck-at-0)."""
    bits = np.asarray(bits, dtype=fmt.uint_dtype)
    return bits & ~_mask(fmt, bit)


def flip_bit(fmt: FloatFormat, bits: np.ndarray, bit) -> np.ndarray:
    """Return a copy of *bits* with *bit* inverted (transient bit-flip)."""
    bits = np.asarray(bits, dtype=fmt.uint_dtype)
    return bits ^ _mask(fmt, bit)


def apply_stuck_at(
    fmt: FloatFormat, bits: np.ndarray, bit, stuck_value: int
) -> np.ndarray:
    """Force *bit* to *stuck_value* (0 or 1) in each word of *bits*."""
    if stuck_value == 0:
        return clear_bit(fmt, bits, bit)
    if stuck_value == 1:
        return set_bit(fmt, bits, bit)
    raise ValueError(f"stuck_value must be 0 or 1, got {stuck_value!r}")


def corrupt_value(
    fmt: FloatFormat, value: float, bit: int, *, stuck_value: int | None = None
) -> float:
    """Corrupt a single scalar *value* and return the faulty value.

    With ``stuck_value`` of 0 or 1 the bit is forced (permanent stuck-at
    fault); with ``stuck_value=None`` the bit is flipped (transient fault).
    The returned value is a Python float decoded from the corrupted word.
    """
    bits = fmt.encode(np.asarray([value]))
    if stuck_value is None:
        faulty = flip_bit(fmt, bits, bit)
    else:
        faulty = apply_stuck_at(fmt, bits, bit, stuck_value)
    return float(fmt.decode(faulty)[0])
