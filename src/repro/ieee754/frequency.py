"""Per-bit frequency statistics over a weight population (paper Fig. 3).

For every bit position ``i`` of the chosen floating-point format, count how
often the bit is naturally 0 (``f0``) or 1 (``f1``) across all weights.
These frequencies weight the two bit-flip directions in the paper's Eq. 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ieee754.formats import FloatFormat


@dataclass(frozen=True)
class BitFrequencies:
    """Counts of 0s and 1s per bit position over a weight population.

    Attributes
    ----------
    fmt:
        The floating-point format the counts refer to.
    f0, f1:
        Integer arrays of length ``fmt.total_bits``; ``f0[i]`` is the number
        of weights whose bit ``i`` is 0, ``f1[i]`` those where it is 1.
    """

    fmt: FloatFormat
    f0: np.ndarray
    f1: np.ndarray

    @property
    def total(self) -> int:
        """Number of weights in the population."""
        return int(self.f0[0] + self.f1[0])

    def fraction_ones(self) -> np.ndarray:
        """Fraction of weights with each bit set (f1 / (f0 + f1))."""
        denom = (self.f0 + self.f1).astype(np.float64)
        with np.errstate(invalid="ignore"):
            out = np.where(denom > 0, self.f1 / denom, 0.0)
        return out

    def as_rows(self) -> list[tuple[int, int, int]]:
        """Rows of (bit index, f0, f1), MSB first — Fig. 3 layout."""
        bits = range(self.fmt.total_bits - 1, -1, -1)
        return [(i, int(self.f0[i]), int(self.f1[i])) for i in bits]


def bit_frequencies(fmt: FloatFormat, values: np.ndarray) -> BitFrequencies:
    """Count f0(i)/f1(i) for every bit position over *values*.

    *values* may be any shape; it is flattened.  Values are first encoded
    into *fmt* (so e.g. float64 inputs are rounded to float32 words when
    ``fmt`` is float32).
    """
    bits = fmt.encode(np.asarray(values).ravel())
    n = bits.size
    f1 = np.empty(fmt.total_bits, dtype=np.int64)
    for i in range(fmt.total_bits):
        mask = np.array(1, dtype=fmt.uint_dtype) << np.array(i, dtype=fmt.uint_dtype)
        f1[i] = int(np.count_nonzero(bits & mask))
    f0 = n - f1
    return BitFrequencies(fmt=fmt, f0=f0, f1=f1)
