"""Floating-point format descriptors.

A :class:`FloatFormat` describes the bit layout of an IEEE-754-style binary
format and provides vectorised conversion between numeric values and raw bit
patterns (unsigned integers).  The fault-injection machinery is written
against this abstraction so the same campaign code runs on float32 weights
(the paper's case study), float16 and bfloat16 (the paper's future-work
extension to "different data representations").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class BitRole(enum.Enum):
    """Role of a bit position within a floating-point word."""

    SIGN = "sign"
    EXPONENT = "exponent"
    MANTISSA = "mantissa"


@dataclass(frozen=True)
class FloatFormat:
    """Bit layout of a binary floating-point format.

    Attributes
    ----------
    name:
        Short identifier, e.g. ``"float32"``.
    total_bits:
        Word width in bits (sign + exponent + mantissa).
    exponent_bits:
        Width of the biased-exponent field.
    mantissa_bits:
        Width of the fraction field.
    """

    name: str
    total_bits: int
    exponent_bits: int
    mantissa_bits: int

    def __post_init__(self) -> None:
        if self.total_bits != 1 + self.exponent_bits + self.mantissa_bits:
            raise ValueError(
                f"{self.name}: total_bits ({self.total_bits}) must equal "
                f"1 + exponent_bits ({self.exponent_bits}) "
                f"+ mantissa_bits ({self.mantissa_bits})"
            )

    # -- layout ----------------------------------------------------------

    @property
    def uint_dtype(self) -> np.dtype:
        """Unsigned integer dtype wide enough to hold one word."""
        return np.dtype(f"uint{max(8, self.total_bits)}")

    @property
    def sign_bit(self) -> int:
        """Index of the sign bit (the most significant bit)."""
        return self.total_bits - 1

    @property
    def exponent_slice(self) -> range:
        """Bit indices of the exponent field, LSB first."""
        return range(self.mantissa_bits, self.mantissa_bits + self.exponent_bits)

    @property
    def mantissa_slice(self) -> range:
        """Bit indices of the mantissa field, LSB first."""
        return range(0, self.mantissa_bits)

    @property
    def bias(self) -> int:
        """Exponent bias (2^(exponent_bits-1) - 1)."""
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def max_finite(self) -> float:
        """Largest finite representable magnitude."""
        max_exp = (1 << self.exponent_bits) - 2 - self.bias
        mantissa_max = 2.0 - 2.0 ** (-self.mantissa_bits)
        return mantissa_max * 2.0**max_exp

    def bit_role(self, bit: int) -> BitRole:
        """Classify bit index *bit* as sign, exponent or mantissa."""
        self._check_bit(bit)
        if bit == self.sign_bit:
            return BitRole.SIGN
        if bit >= self.mantissa_bits:
            return BitRole.EXPONENT
        return BitRole.MANTISSA

    def _check_bit(self, bit: int) -> None:
        if not 0 <= bit < self.total_bits:
            raise ValueError(
                f"bit index {bit} out of range for {self.name} "
                f"(0..{self.total_bits - 1})"
            )

    # -- conversion ------------------------------------------------------
    #
    # float32/float16/bfloat16 use fast native numpy paths; every other
    # layout (e.g. the FP8 formats) goes through a generic table-based
    # codec with IEEE-754 semantics (round-to-nearest-even, subnormals,
    # Inf/NaN at the all-ones exponent).  The generic path is limited to
    # formats of at most 16 bits, which keeps the value table small.

    def _value_table(self) -> np.ndarray:
        """float64 value of every bit pattern (generic formats only)."""
        if self.total_bits > 16:
            raise NotImplementedError(
                f"generic codec only supports <=16-bit formats, "
                f"not {self.name} ({self.total_bits} bits)"
            )
        table = _VALUE_TABLES.get(self.name)
        if table is not None:
            return table
        patterns = np.arange(1 << self.total_bits, dtype=np.uint64)
        sign = np.where((patterns >> (self.total_bits - 1)) & 1, -1.0, 1.0)
        exp_mask = (1 << self.exponent_bits) - 1
        exponent = (patterns >> self.mantissa_bits) & exp_mask
        mantissa = patterns & ((1 << self.mantissa_bits) - 1)
        frac = mantissa.astype(np.float64) / (1 << self.mantissa_bits)
        values = np.empty(patterns.shape, dtype=np.float64)
        normal = (exponent > 0) & (exponent < exp_mask)
        values[normal] = (1.0 + frac[normal]) * np.exp2(
            exponent[normal].astype(np.float64) - self.bias
        )
        subnormal = exponent == 0
        values[subnormal] = frac[subnormal] * np.exp2(1.0 - self.bias)
        special = exponent == exp_mask
        values[special] = np.where(mantissa[special] == 0, np.inf, np.nan)
        values *= sign
        _VALUE_TABLES[self.name] = values
        return values

    def _encode_generic(self, values: np.ndarray) -> np.ndarray:
        """Quantise *values* to the nearest representable bit pattern."""
        table = self._value_table()
        # Order the finite patterns by value for a searchsorted round.
        finite = np.isfinite(table)
        order = np.argsort(table[finite], kind="stable")
        sorted_values = table[finite][order]
        sorted_patterns = np.flatnonzero(finite)[order].astype(self.uint_dtype)
        flat = np.asarray(values, dtype=np.float64).ravel()
        out = np.empty(flat.shape, dtype=self.uint_dtype)
        nan_mask = np.isnan(flat)
        # Canonical quiet NaN: all-ones exponent, mantissa MSB set.
        nan_pattern = (
            ((1 << self.exponent_bits) - 1) << self.mantissa_bits
        ) | (1 << max(self.mantissa_bits - 1, 0))
        out[nan_mask] = self.uint_dtype.type(nan_pattern)
        work = np.where(nan_mask, 0.0, flat)
        idx = np.searchsorted(sorted_values, work)
        idx = np.clip(idx, 1, len(sorted_values) - 1)
        left = sorted_values[idx - 1]
        right = sorted_values[idx]
        pick_right = (work - left) > (right - work)
        midpoint = (work - left) == (right - work)
        # Ties round to the pattern with an even mantissa (LSB 0).
        right_pattern = sorted_patterns[idx]
        pick_right |= midpoint & ((right_pattern & 1) == 0)
        chosen = np.where(
            pick_right, right_pattern, sorted_patterns[idx - 1]
        ).astype(self.uint_dtype)
        # Values beyond the largest finite magnitude overflow to infinity.
        inf_plus = ((1 << self.exponent_bits) - 1) << self.mantissa_bits
        inf_minus = inf_plus | (1 << (self.total_bits - 1))
        chosen[work > self.max_finite] = self.uint_dtype.type(inf_plus)
        chosen[work < -self.max_finite] = self.uint_dtype.type(inf_minus)
        out[~nan_mask] = chosen[~nan_mask]
        return out.reshape(np.asarray(values).shape)

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Convert numeric *values* to raw bit patterns.

        Values are first cast (with round-to-nearest-even) to this format's
        precision.  Returns an array of :attr:`uint_dtype`, same shape.
        """
        values = np.asarray(values)
        if self.name == "float32":
            return values.astype(np.float32).view(np.uint32).copy()
        if self.name == "float16":
            return values.astype(np.float16).view(np.uint16).copy()
        if self.name == "bfloat16":
            u32 = values.astype(np.float32).view(np.uint32)
            # Round-to-nearest-even truncation of the low 16 bits.
            rounding_bias = np.uint32(0x7FFF) + ((u32 >> np.uint32(16)) & np.uint32(1))
            return ((u32 + rounding_bias) >> np.uint32(16)).astype(np.uint16)
        return self._encode_generic(values)

    def decode(self, bits: np.ndarray) -> np.ndarray:
        """Convert raw bit patterns to float64 values (same shape).

        NaN payloads survive the upcast; the cast warning numpy emits for
        them is suppressed since NaN words are legitimate fault results.
        """
        bits = np.asarray(bits, dtype=self.uint_dtype)
        with np.errstate(invalid="ignore"):
            if self.name == "float32":
                return bits.view(np.float32).astype(np.float64)
            if self.name == "float16":
                return bits.view(np.float16).astype(np.float64)
            if self.name == "bfloat16":
                return (
                    (bits.astype(np.uint32) << np.uint32(16))
                    .view(np.float32)
                    .astype(np.float64)
                )
        return self._value_table()[bits.astype(np.int64)]

    def decode_native(self, bits: np.ndarray) -> np.ndarray:
        """Decode raw bits to the closest native numpy float dtype.

        float32 -> float32, float16 -> float16, bfloat16 -> float32 (numpy
        has no bfloat16; the value set is exactly representable in float32).
        """
        bits = np.asarray(bits, dtype=self.uint_dtype)
        if self.name == "float32":
            return bits.view(np.float32).copy()
        if self.name == "float16":
            return bits.view(np.float16).copy()
        if self.name == "bfloat16":
            return (bits.astype(np.uint32) << np.uint32(16)).view(np.float32).copy()
        # Generic formats decode to float32 (their values are exact in it).
        return self.decode(bits).astype(np.float32)


#: Cache of per-format value tables for the generic codec.
_VALUE_TABLES: dict[str, np.ndarray] = {}

FLOAT32 = FloatFormat(name="float32", total_bits=32, exponent_bits=8, mantissa_bits=23)
FLOAT16 = FloatFormat(name="float16", total_bits=16, exponent_bits=5, mantissa_bits=10)
BFLOAT16 = FloatFormat(name="bfloat16", total_bits=16, exponent_bits=8, mantissa_bits=7)
#: 8-bit formats popular for DNN inference, with IEEE-style semantics
#: (all-ones exponent reserved for Inf/NaN; the OCP E4M3 variant instead
#: reuses it for normals — documented deviation).
FLOAT8_E4M3 = FloatFormat(name="float8_e4m3", total_bits=8, exponent_bits=4, mantissa_bits=3)
FLOAT8_E5M2 = FloatFormat(name="float8_e5m2", total_bits=8, exponent_bits=5, mantissa_bits=2)

FORMATS = {
    fmt.name: fmt
    for fmt in (FLOAT32, FLOAT16, BFLOAT16, FLOAT8_E4M3, FLOAT8_E5M2)
}


def make_format(name: str, exponent_bits: int, mantissa_bits: int) -> FloatFormat:
    """Create a custom IEEE-style format (generic codec, <=16 bits)."""
    fmt = FloatFormat(
        name=name,
        total_bits=1 + exponent_bits + mantissa_bits,
        exponent_bits=exponent_bits,
        mantissa_bits=mantissa_bits,
    )
    if fmt.total_bits > 16 and name not in ("float32",):
        raise ValueError(
            f"custom formats are limited to 16 bits, got {fmt.total_bits}"
        )
    return fmt


def format_by_name(name: str) -> FloatFormat:
    """Look up a :class:`FloatFormat` by name (``float32`` etc.)."""
    try:
        return FORMATS[name]
    except KeyError:
        raise KeyError(
            f"unknown float format {name!r}; available: {sorted(FORMATS)}"
        ) from None
