"""Bit-flip distance statistics (paper Fig. 2 and Eq. 4 ingredients).

For every bit position ``i`` and flip direction, compute the average
absolute distance ``|faulty - golden|`` a bit-flip introduces across a
weight population:

- ``D_{0->1}(i)`` averages over weights whose bit ``i`` is naturally 0,
- ``D_{1->0}(i)`` averages over weights whose bit ``i`` is naturally 1.

Flipping high exponent bits of small weights produces enormous (sometimes
non-finite, when the flip lands on the Inf/NaN encodings) faulty values.
The ``nonfinite`` policy controls how those distances enter the average:

- ``"max"`` (default): replace non-finite distances with the format's
  largest finite magnitude.  The affected bits still dominate and become
  outliers in the paper's Eq. 5 normalisation (pinned at p = 0.5), while
  the arithmetic stays well-defined.
- ``"inf"``: keep them as +inf (the averages for those bits become inf).
- ``"drop"``: exclude non-finite faulty values from the average.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ieee754.bits import flip_bit
from repro.ieee754.formats import FloatFormat

_NONFINITE_POLICIES = ("max", "inf", "drop")


@dataclass(frozen=True)
class BitFlipDistances:
    """Average bit-flip distances per bit position over a population.

    Attributes
    ----------
    fmt:
        The floating-point format analysed.
    d01, d10:
        float64 arrays of length ``fmt.total_bits``; average distance of a
        0->1 (resp. 1->0) flip on each bit.  Entries are 0 where no weight
        has the bit in the required state.
    nonfinite:
        The policy that was applied to non-finite faulty values.
    """

    fmt: FloatFormat
    d01: np.ndarray
    d10: np.ndarray
    nonfinite: str


def bit_flip_distances(
    fmt: FloatFormat, values: np.ndarray, *, nonfinite: str = "max"
) -> BitFlipDistances:
    """Compute D_{0->1}(i) and D_{1->0}(i) over *values* for every bit i."""
    if nonfinite not in _NONFINITE_POLICIES:
        raise ValueError(
            f"nonfinite must be one of {_NONFINITE_POLICIES}, got {nonfinite!r}"
        )
    bits = fmt.encode(np.asarray(values).ravel())
    golden = fmt.decode(bits)
    d01 = np.zeros(fmt.total_bits, dtype=np.float64)
    d10 = np.zeros(fmt.total_bits, dtype=np.float64)
    one = np.array(1, dtype=fmt.uint_dtype)
    for i in range(fmt.total_bits):
        mask = one << np.array(i, dtype=fmt.uint_dtype)
        faulty = fmt.decode(flip_bit(fmt, bits, i))
        # Flips that land on Inf/NaN encodings legitimately produce
        # non-finite distances; the nonfinite policy handles them below.
        with np.errstate(invalid="ignore"):
            dist = np.abs(faulty - golden)
        was_zero = (bits & mask) == 0
        d01[i] = _direction_average(dist, was_zero, fmt, nonfinite)
        d10[i] = _direction_average(dist, ~was_zero, fmt, nonfinite)
    return BitFlipDistances(fmt=fmt, d01=d01, d10=d10, nonfinite=nonfinite)


def _direction_average(
    dist: np.ndarray, selector: np.ndarray, fmt: FloatFormat, nonfinite: str
) -> float:
    """Average the distances selected by *selector* under the policy."""
    selected = dist[selector]
    if selected.size == 0:
        return 0.0
    finite = np.isfinite(selected)
    if nonfinite == "drop":
        selected = selected[finite]
        if selected.size == 0:
            return 0.0
    elif nonfinite == "max":
        selected = np.where(finite, selected, fmt.max_finite)
    else:  # "inf": non-finite distances (Inf or NaN encodings) become +inf
        selected = np.where(finite, selected, np.inf)
    return float(np.mean(selected))
