"""Graph-free numpy inference kernels.

These mirror the autograd ops in :mod:`repro.tensor.ops` but skip tape
construction entirely — the fault-injection engine calls them millions of
times, so they must be as lean as a numpy implementation can be.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.im2col import conv_output_size, im2col, zero_pad2d


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    *,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
    cols_out: np.ndarray | None = None,
) -> np.ndarray:
    """Grouped 2-D convolution (inference only).

    Specialised fast paths handle the two layer shapes MobileNetV2 leans
    on — pointwise (1x1) and depthwise (groups == channels) convolutions —
    without materialising im2col columns.  *cols_out* optionally supplies
    a preallocated im2col workspace (ignored by the pointwise/depthwise
    paths, which build no columns); the result is value-identical either
    way.
    """
    n, c, h, w = x.shape
    oc, cg, kh, kw = weight.shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    p = out_h * out_w

    if kh == 1 and kw == 1 and padding == 0 and groups == 1:
        # Pointwise: a plain channel-mixing matmul.
        if stride != 1:
            x = x[:, :, ::stride, ::stride]
        out = np.matmul(weight.reshape(oc, c), x.reshape(n, c, p))
    elif groups == c and oc == c and cg == 1:
        # Depthwise: one kernel per channel over shifted windows.
        windows = np.lib.stride_tricks.sliding_window_view(
            zero_pad2d(x, padding), (kh, kw), axis=(2, 3)
        )[:, :, ::stride, ::stride]
        out = np.einsum(
            "nchwij,cij->nchw", windows, weight.reshape(c, kh, kw), optimize=True
        )
    else:
        cols = im2col(x, kh, kw, stride, padding, out=cols_out)
        if groups == 1:
            out = np.matmul(weight.reshape(oc, cg * kh * kw), cols)
        else:
            k = cg * kh * kw
            ocg = oc // groups
            cols_g = cols.reshape(n, groups, k, p)
            w_g = weight.reshape(groups, ocg, k)
            out = np.einsum("gok,ngkp->ngop", w_g, cols_g, optimize=True)
    out = out.reshape(n, oc, out_h, out_w)
    if bias is not None:
        out = out + bias.reshape(1, oc, 1, 1)
    return np.ascontiguousarray(out, dtype=np.float32)


def batchnorm2d(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    *,
    eps: float = 1e-5,
) -> np.ndarray:
    """Inference batch norm using the running statistics."""
    c = x.shape[1]
    scale = (gamma / np.sqrt(running_var + eps)).astype(np.float32)
    shift = (beta - running_mean * scale).astype(np.float32)
    return x * scale.reshape(1, c, 1, 1) + shift.reshape(1, c, 1, 1)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu6(x: np.ndarray) -> np.ndarray:
    """ReLU clipped at 6."""
    return np.clip(x, 0.0, 6.0)


def linear(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None
) -> np.ndarray:
    """Affine map ``x @ weight.T + bias``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def avg_pool2d(x: np.ndarray, kernel: int) -> np.ndarray:
    """Non-overlapping average pooling with stride == kernel."""
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(
            f"avg_pool2d kernel {kernel} must divide spatial dims ({h}x{w})"
        )
    view = x.reshape(n, c, h // kernel, kernel, w // kernel, kernel)
    return view.mean(axis=(3, 5), dtype=np.float32)


def global_avg_pool2d(x: np.ndarray) -> np.ndarray:
    """Average over the full spatial extent, returning (N, C)."""
    return x.mean(axis=(2, 3), dtype=np.float32)


def subsample2d(x: np.ndarray, stride: int) -> np.ndarray:
    """Spatial subsampling ``x[:, :, ::stride, ::stride]``."""
    return np.ascontiguousarray(x[:, :, ::stride, ::stride])


def pad_channels(x: np.ndarray, before: int, after: int) -> np.ndarray:
    """Zero-pad the channel dimension."""
    return np.pad(x, ((0, 0), (before, after), (0, 0), (0, 0)), mode="constant")


def softmax(x: np.ndarray) -> np.ndarray:
    """Row-wise softmax of logits (N, K)."""
    z = x - x.max(axis=1, keepdims=True)
    exp = np.exp(z)
    return exp / exp.sum(axis=1, keepdims=True)


def channel_abs_stats(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-sample, per-channel ``(max, mean)`` of ``|x|``, in float64.

    The basis vectors of the vectorized engine's dual delta-bound
    chains (see :func:`repro.check.kernels.absorption_spec`): spatial
    axes are reduced away, rank-2 inputs (post-GAP activations, logits)
    pass through with max == mean.  float64 keeps the certification
    arithmetic's own rounding far below the margins it compares against.
    """
    a = np.abs(x)
    if a.ndim <= 2:
        a = a.astype(np.float64)
        return a, a
    axes = tuple(range(2, a.ndim))
    # max of float32 values is exact; mean accumulates in float64 — no
    # full-array float64 cast needed for a sound bound.
    return a.max(axis=axes).astype(np.float64), a.mean(axis=axes, dtype=np.float64)
