"""Module base class: parameter/buffer registry and mode switching."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (always ``requires_grad=True``)."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all network modules.

    Subclasses assign :class:`Parameter`, buffer (plain ndarray registered
    via :meth:`register_buffer`) and sub-:class:`Module` attributes; the
    registry powers iteration, state-dict (de)serialisation and the fault
    injector's weight-target discovery.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    # -- registry ---------------------------------------------------------

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable state array (e.g. BN running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def add_module(self, name: str, module: "Module") -> None:
        """Register a sub-module under *name* (for dynamic children)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- iteration ----------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters, depth-first."""
        for _, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, buffer)`` pairs, depth-first."""
        for name, buf in self._buffers.items():
            yield (f"{prefix}{name}", buf)
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` including self (empty name)."""
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield all modules in the tree, including self."""
        for _, module in self.named_modules():
            yield module

    # -- modes ---------------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively; returns self."""
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch to inference mode recursively; returns self."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # -- state dict ------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of dotted names to parameter/buffer arrays."""
        state: dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays saved by :meth:`state_dict` (strict matching)."""
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        expected = set(own_params) | set(own_buffers)
        provided = set(state)
        if expected != provided:
            missing = sorted(expected - provided)
            extra = sorted(provided - expected)
            raise KeyError(
                f"state dict mismatch; missing={missing[:5]}, extra={extra[:5]}"
            )
        for name, param in own_params.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {param.data.shape}"
                )
            param.data[...] = value
        for name, buf in own_buffers.items():
            value = np.asarray(state[name], dtype=buf.dtype)
            if value.shape != buf.shape:
                raise ValueError(
                    f"shape mismatch for buffer {name}: "
                    f"{value.shape} vs {buf.shape}"
                )
            buf[...] = value

    # -- forward -----------------------------------------------------------------

    def forward(self, x: Tensor) -> Tensor:
        """Autograd forward pass (training / gradient evaluation)."""
        raise NotImplementedError

    def forward_fast(self, x: np.ndarray) -> np.ndarray:
        """Graph-free inference forward on raw ndarrays."""
        raise NotImplementedError

    def capture(self, builder, x: int) -> int:
        """Lower this module's forward pass into an execution plan.

        *builder* is a :class:`repro.runtime.PlanBuilder`; *x* is the
        input buffer slot.  Implementations must ``builder.emit`` the
        exact op sequence (and operand order) of :meth:`forward_fast` —
        that is what makes plan-engine outcomes bit-identical to the
        module path — and return the output slot.
        """
        raise NotImplementedError(
            f"{type(self).__name__} cannot be lowered to an execution "
            "plan; implement capture() mirroring forward_fast()"
        )

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)
