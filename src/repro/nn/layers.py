"""Standard layers: convolution, batch norm, linear, activations, pooling."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, ops


def _he_init(
    rng: np.random.Generator, shape: tuple[int, ...], fan_in: int
) -> np.ndarray:
    """Kaiming-normal initialisation for ReLU networks."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


class Conv2d(Module):
    """2-D convolution with optional groups (depthwise when groups == C).

    Weight shape is ``(out_channels, in_channels // groups, kh, kw)``; the
    paper's fault campaigns target exactly these weights.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        *,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError(
                f"in/out channels ({in_channels}/{out_channels}) must be "
                f"divisible by groups ({groups})"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        rng = rng or np.random.default_rng(0)
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(_he_init(rng, shape, fan_in), name="conv.weight")
        self.bias = Parameter(np.zeros(out_channels, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return ops.conv2d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            groups=self.groups,
        )

    def forward_fast(self, x: np.ndarray) -> np.ndarray:
        return F.conv2d(
            x,
            self.weight.data,
            None if self.bias is None else self.bias.data,
            stride=self.stride,
            padding=self.padding,
            groups=self.groups,
        )

    def capture(self, builder, x: int) -> int:
        return builder.emit("conv2d", (x,), module=self)


class BatchNorm2d(Module):
    """Batch normalisation over (N, H, W) per channel."""

    def __init__(
        self, num_features: int, *, momentum: float = 0.1, eps: float = 1e-5
    ) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer(
            "running_mean", np.zeros(num_features, dtype=np.float32)
        )
        self.register_buffer(
            "running_var", np.ones(num_features, dtype=np.float32)
        )

    def forward(self, x: Tensor) -> Tensor:
        return ops.batchnorm2d(
            x,
            self.weight,
            self.bias,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def forward_fast(self, x: np.ndarray) -> np.ndarray:
        return F.batchnorm2d(
            x,
            self.weight.data,
            self.bias.data,
            self.running_mean,
            self.running_var,
            eps=self.eps,
        )

    def capture(self, builder, x: int) -> int:
        return builder.emit("batchnorm2d", (x,), module=self)


class Linear(Module):
    """Fully connected layer ``x @ W.T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(
            _he_init(rng, (out_features, in_features), in_features)
        )
        self.bias = (
            Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return ops.linear(x, self.weight, self.bias)

    def forward_fast(self, x: np.ndarray) -> np.ndarray:
        return F.linear(
            x, self.weight.data, None if self.bias is None else self.bias.data
        )

    def capture(self, builder, x: int) -> int:
        return builder.emit("linear", (x,), module=self)


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)

    def forward_fast(self, x: np.ndarray) -> np.ndarray:
        return F.relu(x)

    def capture(self, builder, x: int) -> int:
        return builder.emit("relu", (x,))


class ReLU6(Module):
    """ReLU clipped at 6 (MobileNetV2)."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.relu6(x)

    def forward_fast(self, x: np.ndarray) -> np.ndarray:
        return F.relu6(x)

    def capture(self, builder, x: int) -> int:
        return builder.emit("relu6", (x,))


class AvgPool2d(Module):
    """Non-overlapping average pooling with stride == kernel."""

    def __init__(self, kernel: int) -> None:
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        return ops.avg_pool2d(x, self.kernel)

    def forward_fast(self, x: np.ndarray) -> np.ndarray:
        return F.avg_pool2d(x, self.kernel)

    def capture(self, builder, x: int) -> int:
        return builder.emit("avg_pool2d", (x,), module=self)


class GlobalAvgPool2d(Module):
    """Global average pooling: (N, C, H, W) -> (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.global_avg_pool2d(x)

    def forward_fast(self, x: np.ndarray) -> np.ndarray:
        return F.global_avg_pool2d(x)

    def capture(self, builder, x: int) -> int:
        return builder.emit("global_avg_pool2d", (x,))


class Flatten(Module):
    """Flatten all non-batch dimensions."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.reshape(x, (x.shape[0], -1))

    def forward_fast(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)

    def capture(self, builder, x: int) -> int:
        return builder.emit("flatten", (x,))


class Sequential(Module):
    """Run sub-modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layers = list(layers)
        for i, layer in enumerate(layers):
            self.add_module(str(i), layer)

    def __iter__(self):
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def forward_fast(self, x: np.ndarray) -> np.ndarray:
        for layer in self._layers:
            x = layer.forward_fast(x)
        return x

    def capture(self, builder, x: int) -> int:
        for layer in self._layers:
            x = layer.capture(builder, x)
        return x
