"""Neural-network modules on top of the repro autograd engine.

Mirrors the small subset of ``torch.nn`` the paper's CNNs need: parameterised
modules with a registry (for state-dict save/load and fault-target
enumeration), a training/eval mode switch, and — crucially for fault
injection throughput — a graph-free ``forward_fast`` inference path on every
module.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    ReLU,
    ReLU6,
    Sequential,
)
from repro.nn import functional
from repro.nn.serialization import load_state, save_state

__all__ = [
    "Module",
    "Parameter",
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "Flatten",
    "GlobalAvgPool2d",
    "Linear",
    "ReLU",
    "ReLU6",
    "Sequential",
    "functional",
    "load_state",
    "save_state",
]
