"""Saving and loading model state as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from repro.nn.module import Module


def save_state(model: Module, path: str | os.PathLike) -> None:
    """Write the model's state dict to *path* (.npz)."""
    state = model.state_dict()
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **state)


def load_state(model: Module, path: str | os.PathLike) -> None:
    """Load a state dict previously written by :func:`save_state`."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
