"""Saving and loading model state as ``.npz`` archives.

Both directions go through :mod:`repro.store`: writes are atomic (a
killed training run never leaves a truncated archive at the final path)
and recorded in the directory's ``MANIFEST.json``; loads validate the
checksum and zip structure first and raise
:class:`~repro.store.CorruptArtifactError` naming the file and its
regeneration command instead of leaking a bare ``BadZipFile``.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.nn.module import Module
from repro.store import load_verified_npz, save_verified_npz


def _default_regenerate(path: str | os.PathLike) -> str:
    """Best-guess regeneration command for a weights archive.

    Weight archives are named after their registry model, so the stem is
    the training command's ``--model`` argument.
    """
    return f"python examples/train_models.py --model {Path(path).stem}"


def save_state(model: Module, path: str | os.PathLike) -> None:
    """Atomically write the model's state dict to *path* (.npz)."""
    save_verified_npz(path, model.state_dict())


def load_state(
    model: Module,
    path: str | os.PathLike,
    *,
    regenerate: str | None = None,
) -> None:
    """Load a state dict previously written by :func:`save_state`.

    *regenerate* overrides the command suggested when the archive fails
    integrity validation.
    """
    state = load_verified_npz(
        path, regenerate=regenerate or _default_regenerate(path)
    )
    model.load_state_dict(state)
