"""Quickstart: plan and run a data-aware statistical FI campaign.

Trains (or loads) the small ResNet-8 model, computes exhaustive ground
truth once (cached under artifacts/), plans the paper's data-aware SFI
campaign and validates the statistical estimates against the exhaustive
result — the whole DATE 2023 pipeline in ~40 lines.

Run:  python examples/quickstart.py
"""

from repro.faults import TableOracle
from repro.models import pretrained_path
from repro.sfi import CampaignRunner, DataAwareSFI, validate_campaign
from repro.sfi.artifacts import load_or_run_exhaustive
from repro.telemetry import Telemetry, progress_printer
from repro.train import train_reference_model

MODEL = "resnet8_mini"


def main() -> None:
    if not pretrained_path(MODEL).is_file():
        print(f"training {MODEL} (first run only)...")
        _, accuracy = train_reference_model(MODEL)
        print(f"  test accuracy: {accuracy:.1%}")

    print("loading exhaustive ground truth (computed once, then cached)...")
    table, space, engine = load_or_run_exhaustive(
        MODEL, telemetry=Telemetry(on_event=progress_printer("  exhaustive"))
    )
    print(
        f"  population N = {space.total_population:,} faults, "
        f"exhaustive critical rate = {table.total_rate():.3%}"
    )

    planner = DataAwareSFI(error_margin=0.01, confidence=0.99)
    plan = planner.plan(space)
    print(f"\n{plan.describe()}")

    runner = CampaignRunner(TableOracle(table, space), space)
    result = runner.run(plan, seed=0)
    report = validate_campaign(result, table)

    print(f"\n{result.summary()}")
    print(
        f"average per-layer error margin: {report.average_margin:.3%} "
        f"(target: 1%)"
    )
    print(
        f"layers where the exhaustive rate falls inside the margin: "
        f"{report.contained_fraction:.0%}"
    )
    for row in report.layers:
        est = row.estimate
        print(
            f"  layer {row.layer:2d}: exhaustive {row.exhaustive_rate:7.3%}  "
            f"estimated {est.p_hat:7.3%} ± {est.margin:.3%}  "
            f"({est.injections:,} injections)"
        )


if __name__ == "__main__":
    main()
