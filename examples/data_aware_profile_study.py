"""Data-aware p(i) profiles for the paper's full-size CNNs (Figs. 3-4).

Builds the per-bit criticality prior from the golden weight distribution of
the *full-size* ResNet-20 and MobileNetV2 topologies (268k / 2.2M weights)
and shows how it shrinks the campaign: the paper's Table I data-aware
column at full scale, with no inference required.

Also covers the paper's stated future work: the same analysis for float16
and bfloat16 weight representations.

Run:  python examples/data_aware_profile_study.py
"""

from repro.analysis import render_bit_frequency_figure, render_bit_prior_figure
from repro.faults import FaultSpace
from repro.ieee754 import BFLOAT16, FLOAT16, FLOAT32
from repro.models import mobilenetv2, resnet20
from repro.sfi import (
    DataAwareSFI,
    DataUnawareSFI,
    bit_criticality,
    model_weight_vector,
)


def main() -> None:
    models = {"resnet20": resnet20(), "mobilenetv2": mobilenetv2()}
    profiles = {
        name: bit_criticality(model_weight_vector(model))
        for name, model in models.items()
    }

    print("== bit frequencies over ResNet-20 weights (paper Fig. 3) ==")
    print(render_bit_frequency_figure(profiles["resnet20"].frequencies))

    print("\n== data-aware priors p(i) (paper Fig. 4) ==")
    print(render_bit_prior_figure({n: p.p for n, p in profiles.items()}))

    print("\n== campaign sizes at full scale (paper Table I/II flavour) ==")
    for name, model in models.items():
        space = FaultSpace(model)
        unaware = DataUnawareSFI().plan(space)
        aware = DataAwareSFI(profile=profiles[name]).plan(space)
        print(
            f"{name:12s} N = {space.total_population:12,}  "
            f"data-unaware n = {unaware.total_injections:10,}  "
            f"data-aware n = {aware.total_injections:9,}  "
            f"({aware.total_injections / space.total_population:.2%} of N)"
        )

    print("\n== future work: other data representations ==")
    weights = model_weight_vector(models["resnet20"])
    for fmt in (FLOAT32, FLOAT16, BFLOAT16):
        profile = bit_criticality(weights, fmt=fmt)
        peak_bits = [
            bit
            for bit in range(fmt.total_bits - 1, -1, -1)
            if profile.p[bit] > 0.4
        ]
        print(
            f"{fmt.name:9s}: {fmt.total_bits} bits, most-critical bits "
            f"{peak_bits} (p > 0.4), mean p = {profile.p.mean():.3f}"
        )


if __name__ == "__main__":
    main()
