"""Transient activation-fault study (datapath faults, not memory faults).

Extends the paper's weight-fault methodology to transient single-bit
flips in the activation stream — the other fault model PyTorchFI-style
tools offer.  Uses the same statistical planners on the activation fault
space, compares per-bit criticality signatures against the cached
weight-fault ground truth, and exports the results as JSON/CSV under
artifacts/reports/.

Run:  python examples/activation_fault_study.py
"""

from repro.analysis import (
    ascii_bars,
    campaign_to_dict,
    write_json,
)
from repro.data import SynthCIFAR
from repro.faults import (
    ActivationFaultSpace,
    ActivationInferenceEngine,
)
from repro.models import create_model, pretrained_path
from repro.sfi import CampaignRunner, DataUnawareSFI
from repro.sfi.artifacts import load_or_run_exhaustive
from repro.train import train_reference_model
from repro.utils import artifacts_dir

MODEL = "resnet8_mini"


class ActivationOracle:
    """Adapter: classify sampled faults through the activation engine."""

    def __init__(self, engine: ActivationInferenceEngine) -> None:
        self.engine = engine

    def classify(self, fault):
        return self.engine.classify(fault)


def main() -> None:
    if not pretrained_path(MODEL).is_file():
        train_reference_model(MODEL)
    weight_table, _, _ = load_or_run_exhaustive(MODEL)

    model = create_model(MODEL, pretrained=True)
    data = SynthCIFAR("test", size=48, seed=1234)
    engine = ActivationInferenceEngine(model, data.images, data.labels)
    space = ActivationFaultSpace(engine)
    print(
        f"activation fault space: {len(engine.sites)} sites, "
        f"N = {space.total_population:,} transient flips"
    )

    plan = DataUnawareSFI(error_margin=0.1, confidence=0.9).plan(space)
    print(plan.describe())
    result = CampaignRunner(ActivationOracle(engine), space).run(plan, seed=0)
    print(result.summary())

    print("\nper-site critical rates (activation flips):")
    for site in engine.sites:
        est = result.layer_estimate(site.index)
        print(
            f"  stage {site.stage} output {site.shape}: "
            f"{est.p_hat:7.3%} ± {est.margin:.3%}"
        )

    print("\nper-bit critical rate, activation flips vs weight stuck-at:")
    act_rates = []
    weight_rates = []
    for bit in range(31, -1, -1):
        n = criticals = 0
        for (_, b), tally in result.cell_tallies.items():
            if b == bit:
                n += tally[0]
                criticals += tally[1]
        act_rates.append(criticals / n if n else 0.0)
        wc = wp = 0
        for layer in range(weight_table.num_layers):
            c, p = weight_table.cell_counts(layer, bit)
            wc += c
            wp += p
        weight_rates.append(wc / wp)
    labels = [f"bit {b:2d}" for b in range(31, -1, -1)]
    print("activation flips:")
    print(ascii_bars(labels, act_rates, fmt="{:.3f}"))
    print("weight stuck-at (exhaustive):")
    print(ascii_bars(labels, weight_rates, fmt="{:.3f}"))

    out = artifacts_dir() / "reports" / "activation_study.json"
    write_json(campaign_to_dict(result), out)
    print(f"\ncampaign exported to {out}")


if __name__ == "__main__":
    main()
