"""Cost-accuracy trade-offs of statistical fault injection.

Sweeps the campaign parameters the paper fixes (error margin e, confidence
level) and two design choices the paper leaves open (outlier policy for
Eq. 5, Wald vs Wilson intervals), showing how each moves the cost/accuracy
point of the data-aware method on the mini ResNet.

Run:  python examples/sampling_tradeoffs.py
"""

import argparse

from repro.analysis import render_table
from repro.faults import TableOracle
from repro.models import pretrained_path
from repro.sfi import (
    CampaignRunner,
    DataAwareSFI,
    LayerWiseSFI,
    validate_campaign,
)
from repro.sfi.artifacts import load_or_run_exhaustive
from repro.train import train_reference_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="resnet8_mini")
    args = parser.parse_args()

    if not pretrained_path(args.model).is_file():
        train_reference_model(args.model)
    table, space, _ = load_or_run_exhaustive(args.model)
    runner = CampaignRunner(TableOracle(table, space), space)

    print("== error-margin sweep (data-aware, 99% confidence) ==")
    rows = []
    for margin in (0.05, 0.02, 0.01, 0.005):
        plan = DataAwareSFI(error_margin=margin).plan(space)
        report = validate_campaign(runner.run(plan, seed=0), table)
        rows.append(
            [
                f"{margin:.1%}",
                plan.total_injections,
                round(report.injected_fraction * 100, 2),
                round(report.average_margin * 100, 3),
                round(report.contained_fraction * 100),
            ]
        )
    print(
        render_table(
            ["target e", "n", "injected %", "achieved margin %", "contained %"],
            rows,
        )
    )

    print("\n== confidence sweep (data-aware, e = 1%) ==")
    rows = []
    for confidence in (0.90, 0.95, 0.99):
        plan = DataAwareSFI(confidence=confidence).plan(space)
        report = validate_campaign(runner.run(plan, seed=0), table)
        rows.append(
            [
                f"{confidence:.0%}",
                plan.total_injections,
                round(report.average_margin * 100, 3),
                round(report.contained_fraction * 100),
            ]
        )
    print(
        render_table(
            ["confidence", "n", "achieved margin %", "contained %"], rows
        )
    )

    print("\n== Eq. 5 outlier-policy ablation (data-aware) ==")
    rows = []
    for policy in ("iqr", "percentile", "none"):
        plan = DataAwareSFI(outlier_policy=policy).plan(space)
        report = validate_campaign(runner.run(plan, seed=0), table)
        rows.append(
            [
                policy,
                plan.total_injections,
                round(report.average_margin * 100, 3),
                round(report.contained_fraction * 100),
            ]
        )
    print(
        render_table(["policy", "n", "achieved margin %", "contained %"], rows)
    )

    print("\n== reference: layer-wise at the paper's settings ==")
    plan = LayerWiseSFI().plan(space)
    report = validate_campaign(runner.run(plan, seed=0), table)
    print(
        f"layer-wise: n = {plan.total_injections:,}, "
        f"margin = {report.average_margin:.3%}, "
        f"contained = {report.contained_fraction:.0%}"
    )


if __name__ == "__main__":
    main()
