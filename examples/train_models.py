"""Train reference models on SynthCIFAR and cache their weights.

The mini models (used for exhaustive-vs-statistical validation) train to
>90% test accuracy in a few minutes each on one CPU core.

Run:  python examples/train_models.py [--model NAME] [--epochs N]
"""

import argparse

from repro.models import MODELS, pretrained_path
from repro.store import load_manifest
from repro.train import train_reference_model

DEFAULT_MODELS = ("resnet8_mini", "resnet14_mini", "mobilenetv2_mini")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--model",
        choices=sorted(MODELS),
        help="train a single model (default: all mini models)",
    )
    parser.add_argument("--epochs", type=int, help="override the recipe")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    names = [args.model] if args.model else list(DEFAULT_MODELS)
    for name in names:
        print(f"=== training {name} ===")
        _, accuracy = train_reference_model(
            name, epochs=args.epochs, seed=args.seed, log_every=5
        )
        print(f"{name}: test accuracy {accuracy:.2%}")
        path = pretrained_path(name)
        entry = load_manifest(path.parent).get(path.name)
        if entry:
            print(f"{name}: sha256={entry['sha256'][:16]}… recorded in MANIFEST.json")
        print()


if __name__ == "__main__":
    main()
