"""Full reliability study on a ResNet: the paper's evaluation in miniature.

Reproduces, on the width-reduced ResNet-14:

1. Exhaustive fault injection (the ground truth the paper spent 37 days on).
2. All four statistical campaigns, ten random samples each (S0-S9).
3. The Table III comparison: injections, injected %, average error margin.
4. Criticality analyses: most critical layer and bit position.
5. The Bernoulli-assumption check that motivates the whole paper.

Run:  python examples/resnet_reliability_study.py [--model resnet14_mini]
"""

import argparse

from repro.analysis import (
    layer_ranking,
    most_critical_bit,
    render_method_comparison,
    render_per_layer_figure,
)
from repro.faults import TableOracle
from repro.models import pretrained_path
from repro.sfi import (
    CampaignRunner,
    DataAwareSFI,
    DataUnawareSFI,
    LayerWiseSFI,
    NetworkWiseSFI,
    validate_campaign,
)
from repro.sfi.artifacts import load_or_run_exhaustive
from repro.sfi.validation import average_reports
from repro.telemetry import Telemetry, progress_printer
from repro.stats import chi_square_homogeneity
from repro.train import train_reference_model

SEEDS = list(range(10))  # the paper's S0-S9


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="resnet14_mini")
    args = parser.parse_args()

    if not pretrained_path(args.model).is_file():
        print(f"training {args.model}...")
        train_reference_model(args.model)
    table, space, _ = load_or_run_exhaustive(
        args.model,
        telemetry=Telemetry(on_event=progress_printer("  exhaustive")),
    )
    runner = CampaignRunner(TableOracle(table, space), space)

    print(
        f"\nexhaustive ground truth: N = {space.total_population:,} faults, "
        f"critical rate = {table.total_rate():.3%}, "
        f"masked = {table.masked_fraction():.1%}"
    )

    # -- Table III: ten samples per method -------------------------------
    comparisons = []
    per_layer_estimates = {}
    for planner in (
        NetworkWiseSFI(),
        LayerWiseSFI(),
        DataUnawareSFI(),
        DataAwareSFI(),
    ):
        plan = planner.plan(space)
        reports = [
            validate_campaign(runner.run(plan, seed=seed), table)
            for seed in SEEDS
        ]
        comparisons.append(average_reports(reports))
        per_layer_estimates[plan.method] = runner.run(
            plan, seed=0
        ).layer_estimates()

    print("\n== method comparison (averaged over S0-S9, paper Table III) ==")
    print(
        render_method_comparison(
            comparisons, exhaustive_n=space.total_population
        )
    )

    # -- per-layer view (paper Fig. 5) ------------------------------------
    print("\n== per-layer critical rates: exhaustive vs estimates (Fig. 5) ==")
    rates = [table.layer_rate(l) for l in range(table.num_layers)]
    print(
        render_per_layer_figure(
            rates,
            {
                "layer-wise": per_layer_estimates["layer-wise"],
                "data-aware": per_layer_estimates["data-aware"],
            },
        )
    )

    # -- criticality ranking ------------------------------------------------
    print("\n== criticality analyses ==")
    print("layers by exhaustive critical rate:")
    for row in layer_ranking(table)[:5]:
        print(f"  layer {row.layer:2d}: {row.rate:.3%}")
    bit = most_critical_bit(table)
    print(f"most critical bit: {bit.bit} (rate {bit.rate:.3%})")

    # -- the Bernoulli assumption check -----------------------------------
    trials = []
    successes = []
    for layer in range(table.num_layers):
        criticals, population = table.layer_counts(layer)
        trials.append(population)
        successes.append(criticals)
    check = chi_square_homogeneity(trials, successes)
    print(
        f"\nBernoulli assumption 4 across layers: chi2 = {check.statistic:.1f}"
        f" (dof {check.dof}), p = {check.p_value:.2e}"
    )
    if check.rejects_homogeneity():
        print(
            "  -> layers have significantly different fault criticality: a "
            "network-wise sample cannot answer per-layer questions "
            "(the paper's core argument)."
        )


if __name__ == "__main__":
    main()
